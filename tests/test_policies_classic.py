"""Hand-worked behavioural tests: LRU, FIFO, LFU, CLOCK, GCLOCK.

Each scenario is small enough to verify on paper; together with the
oracle-based hypothesis suites these pin down the exact semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.reference import OracleFIFO, OracleLRU
from repro.policies import (ClockPolicy, FIFOPolicy, GClockPolicy, LFUPolicy,
                            LRUPolicy)


def key(block: int) -> tuple:
    return ("t", block)


class TestLRU:
    def test_evicts_least_recent(self):
        lru = LRUPolicy(3)
        for block in (0, 1, 2):
            lru.on_miss(key(block))
        lru.on_hit(key(0))          # order now: 1, 2, 0
        assert lru.on_miss(key(3)) == key(1)

    def test_hit_refreshes_recency(self):
        lru = LRUPolicy(2)
        lru.on_miss(key(0))
        lru.on_miss(key(1))
        lru.on_hit(key(0))
        assert lru.on_miss(key(2)) == key(1)

    def test_lru_order_exposed(self):
        lru = LRUPolicy(3)
        for block in (5, 6, 7):
            lru.on_miss(key(block))
        lru.on_hit(key(5))
        assert list(lru.lru_order()) == [key(6), key(7), key(5)]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=300),
           st.integers(min_value=1, max_value=10))
    def test_matches_oracle(self, trace, capacity):
        lru = LRUPolicy(capacity)
        oracle = OracleLRU(capacity)
        for block in trace:
            result = lru.access(key(block))
            evicted = oracle.access(key(block))
            assert result.evicted == evicted
            assert set(lru.resident_keys()) == set(oracle.order)


class TestFIFO:
    def test_hit_does_not_refresh(self):
        fifo = FIFOPolicy(2)
        fifo.on_miss(key(0))
        fifo.on_miss(key(1))
        fifo.on_hit(key(0))  # no effect on order
        assert fifo.on_miss(key(2)) == key(0)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=300),
           st.integers(min_value=1, max_value=10))
    def test_matches_oracle(self, trace, capacity):
        fifo = FIFOPolicy(capacity)
        oracle = OracleFIFO(capacity)
        for block in trace:
            result = fifo.access(key(block))
            evicted = oracle.access(key(block))
            assert result.evicted == evicted


class TestLFU:
    def test_evicts_least_frequent(self):
        lfu = LFUPolicy(3)
        for block in (0, 1, 2):
            lfu.on_miss(key(block))
        lfu.on_hit(key(0))
        lfu.on_hit(key(0))
        lfu.on_hit(key(1))
        assert lfu.on_miss(key(3)) == key(2)  # freq 1 < 2 < 3

    def test_lru_breaks_frequency_ties(self):
        lfu = LFUPolicy(3)
        for block in (0, 1, 2):
            lfu.on_miss(key(block))
        lfu.on_hit(key(0))  # 0 most recent among freq-ties 1,2
        assert lfu.on_miss(key(3)) == key(1)

    def test_frequency_counter(self):
        lfu = LFUPolicy(2)
        lfu.on_miss(key(0))
        assert lfu.frequency_of(key(0)) == 1
        lfu.on_hit(key(0))
        lfu.on_hit(key(0))
        assert lfu.frequency_of(key(0)) == 3

    def test_new_page_starts_at_frequency_one(self):
        # Classic in-cache LFU: history does not survive eviction.
        lfu = LFUPolicy(2)
        lfu.on_miss(key(0))
        for _ in range(5):
            lfu.on_hit(key(0))
        lfu.on_miss(key(1))
        lfu.on_miss(key(2))  # evicts 1 (freq 1), not 0 (freq 6)
        assert key(0) in lfu
        lfu.on_remove(key(0))
        lfu.on_miss(key(0))
        assert lfu.frequency_of(key(0)) == 1


class TestClock:
    def test_second_chance(self):
        clock = ClockPolicy(3)
        for block in (0, 1, 2):
            clock.on_miss(key(block))
        # All reference bits set on insert; first sweep clears them all
        # and returns to frame 0.
        assert clock.on_miss(key(3)) == key(0)

    def test_referenced_page_survives_sweep(self):
        clock = ClockPolicy(3)
        for block in (0, 1, 2):
            clock.on_miss(key(block))
        clock.on_miss(key(3))      # clears all bits, evicts 0, hand -> 1
        clock.on_hit(key(1))       # re-reference 1
        assert clock.on_miss(key(4)) == key(2)
        assert key(1) in clock

    def test_reference_bit_inspection(self):
        clock = ClockPolicy(2)
        clock.on_miss(key(0))
        assert clock.reference_bit(key(0))
        clock.on_miss(key(1))
        clock.on_miss(key(2))  # sweeps: clears bits, evicts 0
        assert not clock.reference_bit(key(1))

    def test_remove_keeps_ring_dense(self):
        clock = ClockPolicy(4)
        for block in range(4):
            clock.on_miss(key(block))
        clock.on_remove(key(1))
        assert clock.resident_count == 3
        # Ring still functional: more misses cycle correctly.
        for block in range(10, 20):
            clock.on_miss(key(block))
            assert clock.resident_count == 4 or clock.resident_count == 3

    def test_hit_ratio_on_loop_is_poor(self):
        # Loop of N+1 pages over capacity N: clock (like LRU) misses
        # every access once the loop wraps.
        clock = ClockPolicy(4)
        hits = 0
        for i in range(200):
            if clock.access(key(i % 5)).hit:
                hits += 1
        assert hits < 20


class TestGClock:
    def test_counter_increments_and_saturates(self):
        gclock = GClockPolicy(2, initial_count=1, max_count=3)
        gclock.on_miss(key(0))
        for _ in range(10):
            gclock.on_hit(key(0))
        assert gclock.count_of(key(0)) == 3

    def test_sweep_decrements_counters(self):
        gclock = GClockPolicy(2, initial_count=1, max_count=7)
        gclock.on_miss(key(0))
        gclock.on_hit(key(0))      # count 2
        gclock.on_miss(key(1))     # count 1
        # Eviction: sweep decrements until a zero — page 1 hits zero
        # first (1 -> 0 after one decrement; page 0 needs two).
        victim = gclock.on_miss(key(2))
        assert victim == key(1)
        assert key(0) in gclock

    def test_frequency_protects_hot_page(self):
        gclock = GClockPolicy(3, initial_count=1, max_count=7)
        gclock.on_miss(key(0))
        for _ in range(5):
            gclock.on_hit(key(0))
        gclock.on_miss(key(1))
        gclock.on_miss(key(2))
        for block in range(10, 14):
            gclock.on_miss(key(block))
            assert key(0) in gclock  # survives several evictions

    def test_invalid_counts_rejected(self):
        from repro.errors import PolicyError
        with pytest.raises(PolicyError):
            GClockPolicy(2, initial_count=5, max_count=3)
