"""Layering guards: the algorithm layers must not import the simulator.

The runtime refactor's core promise is that :mod:`repro.policies`,
:mod:`repro.core` and the buffer-manager layer depend only on the
:mod:`repro.runtime.base` protocols, so the identical code runs under
the discrete-event simulator *and* on real OS threads. These tests
enforce that promise structurally: a subprocess blocks
``repro.simcore`` (and :mod:`repro.sync`, the sim lock) in
``sys.modules`` and then imports the algorithm layers — any stray
simulator import fails immediately.

A stub ``repro`` parent package is installed first because the real
``repro/__init__`` re-exports harness entry points that legitimately
pull in the simulator; the layers under test must not.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

_GUARD_TEMPLATE = """
import sys
import types

# Stand-in parent package: module lookups resolve against the real
# source tree, but repro/__init__.py (which imports the harness, and
# through it the simulator) never runs.
stub = types.ModuleType("repro")
stub.__path__ = [{pkg_path!r}]
sys.modules["repro"] = stub

# repro.sync's __init__ re-exports SimLock (sim-layer), but
# repro.sync.stats is plain counters both runtimes share — stub the
# package so stats resolves without the init running.
sync_stub = types.ModuleType("repro.sync")
sync_stub.__path__ = [{pkg_path!r} + "/sync"]
sys.modules["repro.sync"] = sync_stub

# Block the simulator and the sim lock: any import attempt raises
# ImportError ("import of repro.simcore halted").
for banned in ("repro.simcore", "repro.sync.locks"):
    sys.modules[banned] = None

import {module}
print("ok")
"""


def _import_with_sim_blocked(module: str) -> None:
    pkg_path = str(SRC / "repro")
    script = _GUARD_TEMPLATE.format(pkg_path=pkg_path, module=module)
    result = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert result.returncode == 0, (
        f"{module} pulled in the simulator:\n{result.stderr}")
    assert result.stdout.strip() == "ok"


@pytest.mark.parametrize("module", [
    "repro.runtime.base",
    "repro.runtime.native",
    "repro.runtime.mp",
    "repro.policies",
    "repro.core",
    "repro.bufmgr.descriptors",
    "repro.bufmgr.manager",
    "repro.bufmgr.hashtable",
    "repro.util",
])
def test_layer_is_simulator_free(module):
    """Each algorithm-layer package imports with repro.simcore blocked."""
    _import_with_sim_blocked(module)


def test_guard_has_teeth():
    """The same harness fails for a module that does use the simulator."""
    script = _GUARD_TEMPLATE.format(
        pkg_path=str(SRC / "repro"), module="repro.simcore.engine")
    result = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert result.returncode != 0
