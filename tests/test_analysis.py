"""Tests for the hit-ratio replay tools and reference oracles."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.hitratio import (replay, replay_through_wrapper,
                                     sweep_capacity)
from repro.analysis.reference import OracleFIFO, OracleLRU
from repro.bufmgr.tags import PageId
from repro.errors import ConfigError
from repro.policies import make_policy
from repro.workloads.traces import SyntheticTrace


def zipf_trace(n=5000, seed=2):
    return SyntheticTrace(seed=seed).zipf("t", 500, n, theta=0.9).accesses


class TestReplay:
    def test_counts_consistent(self):
        trace = zipf_trace()
        result = replay("lru", trace, capacity=50)
        assert result.accesses == len(trace)
        assert result.hits + result.misses == result.accesses
        assert 0 < result.hit_ratio < 1
        assert result.evictions == result.misses - 50

    def test_policy_instance_accepted(self):
        policy = make_policy("2q", 50)
        result = replay(policy, zipf_trace())
        assert result.policy == "2q"
        assert result.capacity == 50

    def test_name_without_capacity_rejected(self):
        with pytest.raises(ConfigError):
            replay("lru", zipf_trace())

    def test_full_capacity_no_evictions(self):
        trace = [PageId("t", block) for block in range(20)] * 3
        result = replay("lru", trace, capacity=20)
        assert result.evictions == 0
        assert result.hits == 40

    def test_bigger_cache_never_worse_for_lru(self):
        # LRU is a stack algorithm: hit ratio is monotone in capacity.
        trace = zipf_trace()
        results = sweep_capacity("lru", trace, [10, 25, 50, 100, 200])
        ratios = [results[cap].hit_ratio for cap in (10, 25, 50, 100, 200)]
        assert ratios == sorted(ratios)


class TestWrapperReplay:
    def test_batching_does_not_hurt_hit_ratio(self):
        # The paper's §IV-F claim, checked across policies: wrapped and
        # bare hit ratios agree within a small tolerance.
        trace = zipf_trace(8000)
        for name in ("lru", "2q", "lirs", "mq", "arc"):
            bare = replay(name, trace, capacity=60).hit_ratio
            wrapped = replay_through_wrapper(
                name, trace, capacity=60, queue_size=64,
                batch_threshold=32, n_threads=4).hit_ratio
            assert wrapped == pytest.approx(bare, abs=0.02), name

    def test_batch_of_one_is_exact(self):
        trace = zipf_trace(4000)
        bare = replay("lru", trace, capacity=40)
        wrapped = replay_through_wrapper("lru", trace, capacity=40,
                                         queue_size=1, batch_threshold=1,
                                         n_threads=1)
        assert wrapped.hits == bare.hits
        assert wrapped.evictions == bare.evictions

    def test_validation(self):
        with pytest.raises(ConfigError):
            replay_through_wrapper("lru", [], capacity=10,
                                   queue_size=4, batch_threshold=8)
        with pytest.raises(ConfigError):
            replay_through_wrapper("lru", [], capacity=10, n_threads=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=10, max_size=300),
           st.integers(min_value=1, max_value=4))
    def test_wrapped_hits_match_bare_residency_decisions(self, blocks,
                                                         n_threads):
        # Whatever the deferral does, hit/miss accounting must stay
        # consistent and capacity respected.
        trace = [PageId("s", block) for block in blocks]
        result = replay_through_wrapper("2q", trace, capacity=8,
                                        queue_size=4, batch_threshold=2,
                                        n_threads=n_threads)
        assert result.hits + result.misses == len(trace)


class TestOracles:
    def test_oracle_lru_behaviour(self):
        oracle = OracleLRU(2)
        assert oracle.access("a") is None
        assert oracle.access("b") is None
        assert oracle.access("a") is None   # hit refreshes
        assert oracle.access("c") == "b"

    def test_oracle_fifo_behaviour(self):
        oracle = OracleFIFO(2)
        oracle.access("a")
        oracle.access("b")
        oracle.access("a")                   # hit, no refresh
        assert oracle.access("c") == "a"
