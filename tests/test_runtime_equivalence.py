"""Cross-runtime equivalence: sim and native execute the same logic.

The runtime refactor claims the *identical* handler/manager/policy
code runs under the discrete-event simulator and on real OS threads.
For a single-threaded access sequence that claim is testable exactly:
with no concurrency, both backends must produce byte-identical
hit/miss streams, eviction sequences and final resident sets — the
sim's virtual clock and the native monotonic clock only affect
*timing*, never *logic*.

The technique mirrors the differential oracle's single-slot replay
(:mod:`repro.check.oracle`): one thread, one BP-Wrapper queue, a
deferred-history flush at the end so batched systems reach a
comparable final state.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

import pytest

from repro.core.bpwrapper import ThreadSlot
from repro.db.storage import DiskArray
from repro.harness.systems import build_system
from repro.hardware.machines import ALTIX_350
from repro.runtime.base import drive
from repro.runtime.native import NativeDisk, NativeRuntime
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator

CAPACITY = 48
QUEUE_SIZE = 8
BATCH_THRESHOLD = 4

#: ALTIX with a sub-millisecond disk so native replays (which really
#: sleep through disk service) stay test-sized. The *model* is
#: unchanged in shape; only the service constant shrinks, identically
#: for both backends.
FAST_DISK_MACHINE = dataclasses.replace(
    ALTIX_350, costs=dataclasses.replace(ALTIX_350.costs,
                                         disk_read_us=120.0))


def _access_sequence(seed: int, length: int = 2500) -> List[tuple]:
    """Deterministic skewed accesses over ~3x the pool capacity."""
    rng = random.Random(seed)
    sequence = []
    for _ in range(length):
        if rng.random() < 0.7:
            page = ("hot", rng.randrange(CAPACITY // 2))
        else:
            page = ("cold", rng.randrange(CAPACITY * 3))
        sequence.append((page, rng.random() < 0.2))
    return sequence


def _instrument_evictions(manager) -> List[object]:
    evictions: List[object] = []
    original = manager.policy.on_miss

    def recording(key):
        victim = original(key)
        if victim is not None:
            evictions.append(victim)
        return victim

    manager.policy.on_miss = recording
    return evictions


def _body(build, slot, sequence, hits):
    manager = build.manager
    for page, is_write in sequence:
        hit = yield from manager.access(slot, page, is_write=is_write)
        hits.append(hit)
    yield from build.handler.flush(slot)


def _replay_sim(system: str, policy_name: str, sequence):
    sim = Simulator()
    build = build_system(system, sim, CAPACITY, ALTIX_350,
                         policy_name=policy_name, queue_size=QUEUE_SIZE,
                         batch_threshold=BATCH_THRESHOLD)
    evictions = _instrument_evictions(build.manager)
    pool = ProcessorPool(sim, 1, 0.0)
    thread = CpuBoundThread(pool, name="replayer")
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    hits: List[bool] = []
    thread.start(_body(build, slot, sequence, hits))
    sim.run()
    return hits, evictions, frozenset(build.manager.policy.resident_keys())


def _replay_native(system: str, policy_name: str, sequence):
    runtime = NativeRuntime(seed=0)
    build = build_system(system, runtime, CAPACITY, ALTIX_350,
                         policy_name=policy_name, queue_size=QUEUE_SIZE,
                         batch_threshold=BATCH_THRESHOLD)
    evictions = _instrument_evictions(build.manager)
    pool = runtime.create_pool(1)
    thread = runtime.create_thread(pool, name="replayer", seed=0)
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    hits: List[bool] = []
    # Single-threaded: drive the generator body inline on this OS
    # thread; every native primitive blocks at call time and yields
    # nothing, so drive() runs it straight to completion.
    drive(_body(build, slot, sequence, hits))
    return hits, evictions, frozenset(build.manager.policy.resident_keys())


@pytest.mark.parametrize("system", ["pg2Q", "pgBat"])
@pytest.mark.parametrize("policy_name", ["2q", "lru"])
@pytest.mark.parametrize("seed", [5, 29])
def test_hit_and_eviction_streams_identical(system, policy_name, seed):
    sequence = _access_sequence(seed)
    sim_hits, sim_evictions, sim_resident = _replay_sim(
        system, policy_name, sequence)
    nat_hits, nat_evictions, nat_resident = _replay_native(
        system, policy_name, sequence)
    assert sim_hits == nat_hits
    assert sim_evictions == nat_evictions
    assert sim_resident == nat_resident
    # Sanity: the workload actually exercised both paths.
    assert any(sim_hits) and not all(sim_hits)
    assert sim_evictions


@pytest.mark.parametrize("seed", [5, 29])
def test_pgclock_lock_free_hit_streams_identical(seed):
    """The relaxed (lock-free) hit path is exactly ``on_hit`` when no
    concurrent mutation exists — a single-threaded native replay must
    match the sim byte for byte, reference bits included."""
    sequence = _access_sequence(seed)
    sim_hits, sim_evictions, sim_resident = _replay_sim(
        "pgclock", None, sequence)
    nat_hits, nat_evictions, nat_resident = _replay_native(
        "pgclock", None, sequence)
    assert sim_hits == nat_hits
    assert sim_evictions == nat_evictions
    assert sim_resident == nat_resident
    assert any(sim_hits) and not all(sim_hits)
    assert sim_evictions


def _replay_sim_with_disk(system: str, sequence):
    sim = Simulator()
    disk = DiskArray(sim, FAST_DISK_MACHINE.costs.disk_read_us,
                     FAST_DISK_MACHINE.costs.disk_concurrency, seed=3)
    build = build_system(system, sim, CAPACITY, FAST_DISK_MACHINE,
                         queue_size=QUEUE_SIZE,
                         batch_threshold=BATCH_THRESHOLD, disk=disk)
    evictions = _instrument_evictions(build.manager)
    pool = ProcessorPool(sim, 1, 0.0)
    thread = CpuBoundThread(pool, name="replayer")
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    hits: List[bool] = []
    thread.start(_body(build, slot, sequence, hits))
    sim.run()
    return hits, evictions, build.manager.stats, disk


def _replay_native_with_disk(system: str, sequence):
    runtime = NativeRuntime(seed=0)
    # time_scale shrinks the *real* sleep without touching the
    # accounted service model, so thousands of misses stay fast.
    disk = NativeDisk(runtime, FAST_DISK_MACHINE.costs.disk_read_us,
                      FAST_DISK_MACHINE.costs.disk_concurrency, seed=3,
                      time_scale=0.01)
    build = build_system(system, runtime, CAPACITY, FAST_DISK_MACHINE,
                         queue_size=QUEUE_SIZE,
                         batch_threshold=BATCH_THRESHOLD, disk=disk)
    evictions = _instrument_evictions(build.manager)
    pool = runtime.create_pool(1)
    thread = runtime.create_thread(pool, name="replayer", seed=0)
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    hits: List[bool] = []
    drive(_body(build, slot, sequence, hits))
    return hits, evictions, build.manager.stats, disk


@pytest.mark.parametrize("system", ["pgBat", "pg2Q"])
def test_disk_streams_and_io_counts_identical(system):
    """With the disk attached, misses really block on I/O natively —
    yet the hit/eviction streams and read/write-back counts must equal
    the sim's exactly (the disk changes timing, never logic)."""
    sequence = _access_sequence(11, length=1200)
    sim_hits, sim_ev, sim_stats, sim_disk = _replay_sim_with_disk(
        system, sequence)
    nat_hits, nat_ev, nat_stats, nat_disk = _replay_native_with_disk(
        system, sequence)
    assert sim_hits == nat_hits
    assert sim_ev == nat_ev
    assert (sim_stats.accesses, sim_stats.hits, sim_stats.misses,
            sim_stats.write_backs) == \
           (nat_stats.accesses, nat_stats.hits, nat_stats.misses,
            nat_stats.write_backs)
    assert (sim_disk.reads, sim_disk.writes) == (nat_disk.reads,
                                                 nat_disk.writes)
    assert nat_disk.reads > 0 and nat_disk.writes > 0


def test_native_disk_bgwriter_run_matches_sim_counts():
    """Full-harness parity: sim and native runs with the disk model
    *and* a live bgwriter daemon agree on every policy-visible count.

    One backend thread keeps the access order deterministic; the
    bgwriter races the backend natively but only marks pages clean —
    it can shift *which* evictions pay a write-back (not asserted),
    never which pages hit, miss, or get evicted.
    """
    from repro.harness.experiment import ExperimentConfig, run_experiment

    base = ExperimentConfig(
        system="pgBat", workload="dbt2", machine=FAST_DISK_MACHINE,
        n_processors=1, n_threads=1, buffer_pages=200,
        target_accesses=4000, use_disk=True, background_writer=True,
        seed=13, max_sim_time_us=120_000_000.0)
    sim_result = run_experiment(base)
    nat_result = run_experiment(base.with_params(runtime="native"))
    assert (sim_result.total_accesses, sim_result.accesses,
            sim_result.hits, sim_result.misses, sim_result.disk_reads) == \
           (nat_result.total_accesses, nat_result.accesses,
            nat_result.hits, nat_result.misses, nat_result.disk_reads)
    # Both bgwriters must have actually run and found dirty pages.
    assert sim_result.misses > 0
    assert nat_result.bgwriter_cleaned > 0
    assert sim_result.bgwriter_cleaned > 0


def test_native_matches_sim_manager_stats():
    """Whole AccessStats agree, not just the externally visible streams."""
    sequence = _access_sequence(17)
    sim = Simulator()
    sim_build = build_system("pgBat", sim, CAPACITY, ALTIX_350,
                             queue_size=QUEUE_SIZE,
                             batch_threshold=BATCH_THRESHOLD)
    pool = ProcessorPool(sim, 1, 0.0)
    thread = CpuBoundThread(pool, name="replayer")
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    thread.start(_body(sim_build, slot, sequence, []))
    sim.run()

    runtime = NativeRuntime(seed=0)
    nat_build = build_system("pgBat", runtime, CAPACITY, ALTIX_350,
                             queue_size=QUEUE_SIZE,
                             batch_threshold=BATCH_THRESHOLD)
    nat_pool = runtime.create_pool(1)
    nat_thread = runtime.create_thread(nat_pool, name="replayer", seed=0)
    nat_slot = ThreadSlot(nat_thread, thread_id=0, queue_size=QUEUE_SIZE)
    drive(_body(nat_build, nat_slot, sequence, []))

    sim_stats, nat_stats = sim_build.manager.stats, nat_build.manager.stats
    assert (sim_stats.accesses, sim_stats.hits, sim_stats.misses,
            sim_stats.evictions, sim_stats.write_accesses) == \
           (nat_stats.accesses, nat_stats.hits, nat_stats.misses,
            nat_stats.evictions, nat_stats.write_accesses)
    assert slot.queue.commits == nat_slot.queue.commits
    assert slot.stale_entries == nat_slot.stale_entries
