"""Cross-runtime equivalence: sim and native execute the same logic.

The runtime refactor claims the *identical* handler/manager/policy
code runs under the discrete-event simulator and on real OS threads.
For a single-threaded access sequence that claim is testable exactly:
with no concurrency, both backends must produce byte-identical
hit/miss streams, eviction sequences and final resident sets — the
sim's virtual clock and the native monotonic clock only affect
*timing*, never *logic*.

The technique mirrors the differential oracle's single-slot replay
(:mod:`repro.check.oracle`): one thread, one BP-Wrapper queue, a
deferred-history flush at the end so batched systems reach a
comparable final state.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core.bpwrapper import ThreadSlot
from repro.harness.systems import build_system
from repro.hardware.machines import ALTIX_350
from repro.runtime.base import drive
from repro.runtime.native import NativeRuntime
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator

CAPACITY = 48
QUEUE_SIZE = 8
BATCH_THRESHOLD = 4


def _access_sequence(seed: int, length: int = 2500) -> List[tuple]:
    """Deterministic skewed accesses over ~3x the pool capacity."""
    rng = random.Random(seed)
    sequence = []
    for _ in range(length):
        if rng.random() < 0.7:
            page = ("hot", rng.randrange(CAPACITY // 2))
        else:
            page = ("cold", rng.randrange(CAPACITY * 3))
        sequence.append((page, rng.random() < 0.2))
    return sequence


def _instrument_evictions(manager) -> List[object]:
    evictions: List[object] = []
    original = manager.policy.on_miss

    def recording(key):
        victim = original(key)
        if victim is not None:
            evictions.append(victim)
        return victim

    manager.policy.on_miss = recording
    return evictions


def _body(build, slot, sequence, hits):
    manager = build.manager
    for page, is_write in sequence:
        hit = yield from manager.access(slot, page, is_write=is_write)
        hits.append(hit)
    yield from build.handler.flush(slot)


def _replay_sim(system: str, policy_name: str, sequence):
    sim = Simulator()
    build = build_system(system, sim, CAPACITY, ALTIX_350,
                         policy_name=policy_name, queue_size=QUEUE_SIZE,
                         batch_threshold=BATCH_THRESHOLD)
    evictions = _instrument_evictions(build.manager)
    pool = ProcessorPool(sim, 1, 0.0)
    thread = CpuBoundThread(pool, name="replayer")
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    hits: List[bool] = []
    thread.start(_body(build, slot, sequence, hits))
    sim.run()
    return hits, evictions, frozenset(build.manager.policy.resident_keys())


def _replay_native(system: str, policy_name: str, sequence):
    runtime = NativeRuntime(seed=0)
    build = build_system(system, runtime, CAPACITY, ALTIX_350,
                         policy_name=policy_name, queue_size=QUEUE_SIZE,
                         batch_threshold=BATCH_THRESHOLD)
    evictions = _instrument_evictions(build.manager)
    pool = runtime.create_pool(1)
    thread = runtime.create_thread(pool, name="replayer", seed=0)
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    hits: List[bool] = []
    # Single-threaded: drive the generator body inline on this OS
    # thread; every native primitive blocks at call time and yields
    # nothing, so drive() runs it straight to completion.
    drive(_body(build, slot, sequence, hits))
    return hits, evictions, frozenset(build.manager.policy.resident_keys())


@pytest.mark.parametrize("system", ["pg2Q", "pgBat"])
@pytest.mark.parametrize("policy_name", ["2q", "lru"])
@pytest.mark.parametrize("seed", [5, 29])
def test_hit_and_eviction_streams_identical(system, policy_name, seed):
    sequence = _access_sequence(seed)
    sim_hits, sim_evictions, sim_resident = _replay_sim(
        system, policy_name, sequence)
    nat_hits, nat_evictions, nat_resident = _replay_native(
        system, policy_name, sequence)
    assert sim_hits == nat_hits
    assert sim_evictions == nat_evictions
    assert sim_resident == nat_resident
    # Sanity: the workload actually exercised both paths.
    assert any(sim_hits) and not all(sim_hits)
    assert sim_evictions


def test_native_matches_sim_manager_stats():
    """Whole AccessStats agree, not just the externally visible streams."""
    sequence = _access_sequence(17)
    sim = Simulator()
    sim_build = build_system("pgBat", sim, CAPACITY, ALTIX_350,
                             queue_size=QUEUE_SIZE,
                             batch_threshold=BATCH_THRESHOLD)
    pool = ProcessorPool(sim, 1, 0.0)
    thread = CpuBoundThread(pool, name="replayer")
    slot = ThreadSlot(thread, thread_id=0, queue_size=QUEUE_SIZE)
    thread.start(_body(sim_build, slot, sequence, []))
    sim.run()

    runtime = NativeRuntime(seed=0)
    nat_build = build_system("pgBat", runtime, CAPACITY, ALTIX_350,
                             queue_size=QUEUE_SIZE,
                             batch_threshold=BATCH_THRESHOLD)
    nat_pool = runtime.create_pool(1)
    nat_thread = runtime.create_thread(nat_pool, name="replayer", seed=0)
    nat_slot = ThreadSlot(nat_thread, thread_id=0, queue_size=QUEUE_SIZE)
    drive(_body(nat_build, nat_slot, sequence, []))

    sim_stats, nat_stats = sim_build.manager.stats, nat_build.manager.stats
    assert (sim_stats.accesses, sim_stats.hits, sim_stats.misses,
            sim_stats.evictions, sim_stats.write_accesses) == \
           (nat_stats.accesses, nat_stats.hits, nat_stats.misses,
            nat_stats.evictions, nat_stats.write_accesses)
    assert slot.queue.commits == nat_slot.queue.commits
    assert slot.stale_entries == nat_slot.stale_entries
