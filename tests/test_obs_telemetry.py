"""Telemetry primitives: trace contexts, windowed series, SLOs, export.

The contracts pinned here:

* :class:`TraceContext` ids are pure functions of their inputs — no
  counters, no randomness — so same-seed runs mint identical ids and
  traces stay byte-identical;
* the sampler document and the OpenMetrics export are byte-stable and
  name-sorted, whatever order instruments were created in;
* SLO burn rates follow ``burn = bad_fraction / budget`` exactly;
* :func:`merge_snapshots` over per-worker snapshots equals recording
  the combined observation stream into one registry.
"""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry
from repro.obs.export import (merge_snapshots, registry_from_snapshot,
                              sanitize_metric_name, to_openmetrics,
                              write_openmetrics)
from repro.obs.telemetry import (SLOSpec, TelemetrySampler, TimeSeries,
                                 TraceContext, WindowedHistogram,
                                 evaluate_slo)


class TestTraceContext:
    def test_derivation_is_deterministic(self):
        a = TraceContext.derive(42, "tenant03", 1, 17)
        b = TraceContext.derive(42, "tenant03", 1, 17)
        assert a == b
        assert a.request_id == f"{a.trace_id}:000017"

    def test_distinct_inputs_distinct_ids(self):
        base = TraceContext.derive(42, "tenant03", 1, 0)
        assert TraceContext.derive(43, "tenant03", 1, 0) != base
        assert TraceContext.derive(42, "tenant04", 1, 0) != base
        assert (TraceContext.derive(42, "tenant03", 2, 0).trace_id
                != base.trace_id)
        # Same session stream, later request: same trace, new request.
        later = TraceContext.derive(42, "tenant03", 1, 9)
        assert later.trace_id == base.trace_id
        assert later.request_id != base.request_id

    def test_as_args_carries_the_linkage_keys(self):
        ctx = TraceContext.derive(7, "t", 0, 3)
        args = ctx.as_args()
        assert args == {"trace": ctx.trace_id, "req": ctx.request_id,
                        "tenant": "t"}


class TestTimeSeries:
    def test_samples_round_and_accumulate(self):
        series = TimeSeries("queue", unit="req")
        series.sample(1000.123456, 3.00000049)
        series.sample(2000.0, 4.5)
        assert series.points == [[1000.123, 3.0], [2000.0, 4.5]]
        assert series.last() == 4.5
        assert series.values() == [3.0, 4.5]


class TestWindowedHistogram:
    def test_observations_land_in_time_windows(self):
        windowed = WindowedHistogram(1000.0)
        windowed.record(10.0, 5.0)
        windowed.record(999.0, 7.0)
        windowed.record(1001.0, 11.0)
        doc = windowed.to_dict()
        assert [w["start_us"] for w in doc["windows"]] == [0.0, 1000.0]
        assert [w["count"] for w in doc["windows"]] == [2, 1]
        assert windowed.total_count == 3

    def test_merged_folds_every_window(self):
        windowed = WindowedHistogram(100.0)
        for t in range(10):
            windowed.record(t * 100.0, float(t + 1))
        merged = windowed.merged()
        assert merged.count == 10
        assert merged.max_value == 10.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedHistogram(0.0)


class TestTelemetrySampler:
    def test_document_is_sorted_and_stable(self):
        def build(order):
            sampler = TelemetrySampler(500.0)
            for name in order:
                sampler.series(name, unit="x").sample(0.0, 1.0)
            sampler.latency("tenant01").record(10.0, 42.0)
            sampler.latency("tenant00").record(10.0, 7.0)
            sampler.samples_taken = 1
            return json.dumps(sampler.to_dict(), sort_keys=True)

        assert build(["b", "a"]) == build(["a", "b"])
        doc = json.loads(build(["z", "m"]))
        assert list(doc["series"]) == ["m", "z"]
        assert list(doc["latency_windows"]) == ["tenant00", "tenant01"]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TelemetrySampler(0.0)


class TestSLO:
    def test_spec_validation(self):
        SLOSpec().validate()
        with pytest.raises(ValueError):
            SLOSpec(p99_ms=0.0).validate()
        with pytest.raises(ValueError):
            SLOSpec(error_budget=1.0).validate()
        with pytest.raises(ValueError):
            SLOSpec(throttle_rate=0.0).validate()

    def test_burn_rates_are_bad_fraction_over_budget(self):
        spec = SLOSpec(p99_ms=1.0, error_budget=0.10, throttle_rate=0.25)
        # 2 of 10 requests over 1 ms -> slow fraction 0.2 -> burn 2.0.
        latencies = [500.0] * 8 + [1500.0, 2500.0]
        record = evaluate_slo(spec, "t", latencies, admitted=10,
                              throttled=5)
        assert record["slow_fraction"] == pytest.approx(0.2)
        assert record["latency_burn_rate"] == pytest.approx(2.0)
        assert not record["latency_ok"]
        # 5 of 10 admitted throttled -> 0.5 / 0.25 -> burn 2.0.
        assert record["throttle_burn_rate"] == pytest.approx(2.0)
        assert not record["throttle_ok"]
        assert not record["ok"]

    def test_compliant_tenant_is_ok(self):
        record = evaluate_slo(SLOSpec(), "t", [100.0] * 100,
                              admitted=100, throttled=0)
        assert record["ok"]
        assert record["latency_burn_rate"] == 0.0
        assert record["achieved_p99_ms"] == pytest.approx(0.1)

    def test_empty_tenant_is_vacuously_ok(self):
        record = evaluate_slo(SLOSpec(), "idle", [], admitted=0,
                              throttled=0)
        assert record["ok"]
        assert record["completed"] == 0
        assert record["achieved_p99_ms"] == 0.0


class TestOpenMetrics:
    def test_name_sanitization(self):
        assert sanitize_metric_name("serve.shard0.hits") == \
            "serve_shard0_hits"
        assert sanitize_metric_name("lock:replacement") == \
            "lock:replacement"
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_export_shape_and_determinism(self, tmp_path):
        def build():
            registry = MetricsRegistry()
            registry.counter("b.count").inc(3)
            registry.counter("a.count").inc(1)
            registry.gauge("depth").set(4.0)
            hist = registry.histogram("lat.us")
            for value in [1.0, 3.0, 3.0, 200.0]:
                hist.record(value)
            return to_openmetrics(registry.snapshot())

        text = build()
        assert text == build()
        assert text.endswith("# EOF\n")
        lines = text.splitlines()
        assert "repro_a_count_total 1" in lines
        assert "repro_b_count_total 3" in lines
        # Counters sorted: a before b.
        assert (lines.index("repro_a_count_total 1")
                < lines.index("repro_b_count_total 3"))
        assert "repro_lat_us_count 4" in lines
        assert 'repro_lat_us_bucket{le="+Inf"} 4' in lines
        # Buckets are cumulative: the last finite bucket == count.
        finite = [line for line in lines
                  if line.startswith("repro_lat_us_bucket")
                  and "+Inf" not in line]
        assert finite and finite[-1].endswith(" 4")
        path = write_openmetrics(tmp_path / "m.prom",
                                 MetricsRegistry().snapshot())
        assert path.read_text().endswith("# EOF\n")

    def test_gauge_exports_peak_twin(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue")
        gauge.set(9.0)
        gauge.set(2.0)
        text = to_openmetrics(registry.snapshot())
        assert "repro_queue 2" in text
        assert "repro_queue_max 9" in text


class TestMergeSnapshots:
    def _worker_snapshot(self, counter, values, depth):
        registry = MetricsRegistry()
        registry.counter("work.done").inc(counter)
        registry.gauge("queue.depth").set(depth)
        hist = registry.histogram("lat.us")
        for value in values:
            hist.record(value)
        return registry.snapshot()

    def test_merge_equals_combined_recording(self):
        a = self._worker_snapshot(3, [1.0, 5.0], 2.0)
        b = self._worker_snapshot(4, [9.0, 130.0, 2.0], 6.0)
        merged = merge_snapshots([a, b])
        combined = MetricsRegistry()
        combined.counter("work.done").inc(7)
        combined.gauge("queue.depth").set(2.0)
        combined.gauge("queue.depth").set(6.0)
        hist = combined.histogram("lat.us")
        for value in [1.0, 5.0, 9.0, 130.0, 2.0]:
            hist.record(value)
        expected = combined.snapshot()
        assert merged["counters"] == expected["counters"]
        assert merged["histograms"] == expected["histograms"]
        assert merged["gauges"]["queue.depth"]["value"] == 6.0
        assert merged["gauges"]["queue.depth"]["max"] == 6.0

    def test_merge_is_order_independent(self):
        a = self._worker_snapshot(3, [1.0, 5.0], 2.0)
        b = self._worker_snapshot(4, [9.0], 6.0)
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    def test_registry_round_trip(self):
        snapshot = self._worker_snapshot(5, [4.0, 8.0], 3.0)
        rebuilt = registry_from_snapshot(snapshot).snapshot()
        assert rebuilt == snapshot

    def test_histogram_merge_preserves_total_count(self):
        parts = [Histogram() for _ in range(3)]
        for index, hist in enumerate(parts):
            for value in range(1, 10 * (index + 1)):
                hist.record(float(value))
        merged = Histogram()
        for hist in parts:
            merged.merge(Histogram.from_dict(hist.to_dict()))
        assert merged.count == sum(h.count for h in parts)
