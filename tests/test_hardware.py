"""Tests for cost models, machine specs, and the CPU-cache model."""

from __future__ import annotations

import dataclasses

import pytest

from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.hardware.machines import ALTIX_350, POWEREDGE_2900, MachineSpec


class TestCostModel:
    def test_frozen(self):
        costs = CostModel()
        with pytest.raises(dataclasses.FrozenInstanceError):
            costs.user_work_us = 1.0  # type: ignore[misc]

    def test_scaled_overrides(self):
        costs = CostModel().scaled(user_work_us=99.0)
        assert costs.user_work_us == 99.0
        assert costs.disk_read_us == CostModel().disk_read_us

    def test_all_costs_non_negative(self):
        costs = CostModel()
        for field in dataclasses.fields(costs):
            value = getattr(costs, field.name)
            if isinstance(value, (int, float)):
                assert value >= 0, field.name


class TestMachines:
    def test_paper_platforms(self):
        assert ALTIX_350.max_processors == 16
        assert POWEREDGE_2900.max_processors == 8
        assert not ALTIX_350.has_hw_prefetcher
        assert POWEREDGE_2900.has_hw_prefetcher

    def test_processor_steps_within_bounds(self):
        for machine in (ALTIX_350, POWEREDGE_2900):
            assert max(machine.processor_steps) == machine.max_processors
            assert machine.processor_steps[0] == 1

    def test_poweredge_faster_user_work(self):
        # The hardware prefetcher accelerates sequential user work.
        assert (POWEREDGE_2900.costs.user_work_us
                < ALTIX_350.costs.user_work_us)

    def test_poweredge_smaller_warmup(self):
        # Out-of-order execution hides part of the stalls.
        assert (POWEREDGE_2900.costs.warmup_fixed_us
                < ALTIX_350.costs.warmup_fixed_us)

    def test_with_costs_override(self):
        custom = ALTIX_350.with_costs(user_work_us=1.0)
        assert custom.costs.user_work_us == 1.0
        assert ALTIX_350.costs.user_work_us != 1.0
        assert custom.name == ALTIX_350.name


class TestMetadataCache:
    def make(self, **kwargs) -> MetadataCacheModel:
        return MetadataCacheModel(CostModel(), **kwargs)

    def test_cold_warmup_cost(self):
        cache = self.make()
        costs = CostModel()
        expected = costs.warmup_fixed_us + 4 * costs.warmup_per_page_us
        assert cache.warmup_cost(1, 4) == pytest.approx(expected)

    def test_valid_prefetch_reduces_to_residual(self):
        cache = self.make()
        costs = CostModel()
        cache.prefetch(1, 4)
        assert cache.warmup_cost(1, 4) == pytest.approx(
            4 * costs.warm_residual_us)
        assert cache.prefetches_valid_at_use == 1

    def test_commit_invalidates_other_threads(self):
        cache = self.make(invalidation_per_commit=1.0)
        costs = CostModel()
        cache.prefetch(1, 4)
        cache.note_commit(2)  # another thread commits
        cold = costs.warmup_fixed_us + 4 * costs.warmup_per_page_us
        assert cache.warmup_cost(1, 4) == pytest.approx(cold)
        assert cache.prefetches_invalidated == 1

    def test_partial_invalidation(self):
        cache = self.make(invalidation_per_commit=0.25)
        costs = CostModel()
        cache.prefetch(1, 4)
        cache.note_commit(2)
        cold = costs.warmup_fixed_us + 4 * costs.warmup_per_page_us
        warm = 4 * costs.warm_residual_us
        expected = warm + 0.25 * (cold - warm)
        assert cache.warmup_cost(1, 4) == pytest.approx(expected)

    def test_committers_own_lines_stay_warm(self):
        cache = self.make()
        cache.prefetch(1, 1)
        cache.note_commit(1)  # own commit refreshes the version
        assert cache.is_warm(1)

    def test_prefetch_cost_scales_with_pages(self):
        cache = self.make()
        costs = CostModel()
        assert cache.prefetch(1, 8) == pytest.approx(
            8 * costs.prefetch_issue_us)

    def test_prefetch_consumed_at_use(self):
        cache = self.make()
        cache.prefetch(1, 1)
        cache.warmup_cost(1, 1)
        # Second use without re-prefetching pays the cold cost.
        costs = CostModel()
        cold = costs.warmup_fixed_us + costs.warmup_per_page_us
        assert cache.warmup_cost(1, 1) == pytest.approx(cold)

    def test_hw_prefetcher_flag_bypasses_model(self):
        cache = MetadataCacheModel(
            CostModel(),
            hardware_prefetcher_helps_critical_section=True)
        costs = CostModel()
        assert cache.warmup_cost(1, 4) == pytest.approx(
            4 * costs.warm_residual_us)
