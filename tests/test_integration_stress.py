"""Hypothesis-driven stress: random schedules through the full stack.

These generate small random scenarios — thread counts, CPU counts,
access patterns, wrapper parameters, system flavours — and run them
through the complete simulator, asserting only invariants that must
hold for *every* schedule. This is the test that catches engine-level
races (lost wakeups, double releases, frame leaks) that hand-written
scenarios miss.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import ThreadSlot
from repro.harness.systems import build_system
from repro.hardware.costs import CostModel
from repro.hardware.machines import MachineSpec
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator
from repro.simcore.rng import stream_rng


def tiny_machine() -> MachineSpec:
    return MachineSpec(
        name="StressTest", max_processors=4, processor_steps=(1, 2, 4),
        costs=CostModel(user_work_us=3.0, context_switch_us=0.7,
                        scheduler_quantum_us=50.0))


scenario = st.fixed_dictionaries({
    "system": st.sampled_from(
        ["pgclock", "pg2Q", "pgBat", "pgPre", "pgBatPre", "pgDist",
         "pgBatShared"]),
    "n_cpus": st.integers(min_value=1, max_value=4),
    "n_threads": st.integers(min_value=1, max_value=6),
    # At least 2 frames per thread: each thread can pin a page across a
    # blocking point, and a pool smaller than its pinners legitimately
    # errors out (PostgreSQL: "no unpinned buffers available").
    "capacity": st.integers(min_value=12, max_value=32),
    "n_pages": st.integers(min_value=2, max_value=64),
    "accesses_per_thread": st.integers(min_value=5, max_value=80),
    "queue_size": st.integers(min_value=1, max_value=8),
    "seed": st.integers(min_value=0, max_value=1000),
})


@settings(max_examples=60, deadline=None)
@given(scenario)
def test_random_schedules_preserve_invariants(params):
    sim = Simulator()
    machine = tiny_machine()
    threshold = max(1, params["queue_size"] // 2)
    build = build_system(
        params["system"], sim, params["capacity"], machine,
        queue_size=params["queue_size"], batch_threshold=threshold)
    manager = build.manager
    pool = ProcessorPool(sim, params["n_cpus"],
                         machine.costs.context_switch_us)
    completed = []

    def body(slot, rng):
        for _ in range(params["accesses_per_thread"]):
            slot.thread.charge(machine.costs.user_work_us
                               * rng.uniform(0.5, 1.5))
            page = PageId("s", rng.randrange(params["n_pages"]))
            yield from manager.access(slot, page,
                                      is_write=rng.random() < 0.2)
            yield from slot.thread.maybe_yield(
                machine.costs.scheduler_quantum_us)
        completed.append(slot.thread_id)

    for index in range(params["n_threads"]):
        thread = CpuBoundThread(pool, name=f"s{index}")
        slot = ThreadSlot(thread, index,
                          queue_size=params["queue_size"])
        rng = stream_rng(params["seed"], "stress", index)
        thread.start(body(slot, rng))
    sim.run(until=50_000_000.0)

    # 1. Every thread finished: no deadlock, no lost wakeup.
    assert sorted(completed) == list(range(params["n_threads"]))
    # 2. Pool bookkeeping is consistent.
    manager.check_invariants()
    # 3. All locks quiesced.
    assert not build.lock.held
    assert build.lock.queue_length == 0
    for extra_lock in build.extra.get("locks", []):
        assert not extra_lock.held
    record_lock = build.extra.get("record_lock")
    if record_lock is not None:
        assert not record_lock.held
    # 4. Access accounting adds up.
    expected = params["n_threads"] * params["accesses_per_thread"]
    assert manager.stats.accesses == expected
    assert manager.stats.hits + manager.stats.misses == expected
    # 5. No CPU leaked.
    assert pool.free_processors <= pool.n_processors


@settings(max_examples=20, deadline=None)
@given(scenario)
def test_random_schedules_are_deterministic(params):
    def run_once() -> tuple:
        sim = Simulator()
        machine = tiny_machine()
        build = build_system(
            params["system"], sim, params["capacity"], machine,
            queue_size=params["queue_size"],
            batch_threshold=max(1, params["queue_size"] // 2))
        pool = ProcessorPool(sim, params["n_cpus"],
                             machine.costs.context_switch_us)

        def body(slot, rng):
            for _ in range(params["accesses_per_thread"]):
                slot.thread.charge(machine.costs.user_work_us
                                   * rng.uniform(0.5, 1.5))
                page = PageId("s", rng.randrange(params["n_pages"]))
                yield from manager_access(slot, page)

        def manager_access(slot, page):
            hit = yield from build.manager.access(slot, page)
            return hit

        for index in range(params["n_threads"]):
            thread = CpuBoundThread(pool, name=f"s{index}")
            slot = ThreadSlot(thread, index,
                              queue_size=params["queue_size"])
            thread.start(body(slot, stream_rng(params["seed"], "d", index)))
        sim.run()
        return (sim.now, build.manager.stats.hits,
                build.lock.stats.contentions, sim.events_processed)

    assert run_once() == run_once()
