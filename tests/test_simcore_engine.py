"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import (AllOf, AnyOf, Process, Simulator,
                                  Sleep, Timeout)


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        assert sim.run() == 5.0

    def test_clock_does_not_pass_until_on_drain(self, sim):
        sim.timeout(5.0)
        assert sim.run(until=100.0) == 5.0

    def test_until_cuts_off_future_events(self, sim):
        fired = []
        sim.schedule = None  # ensure we use public API only
        Timeout(sim, 50.0).callbacks.append(lambda e: fired.append(e))
        sim.run(until=10.0)
        assert sim.now == 10.0
        assert not fired
        sim.run()
        assert fired

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_max_events_budget(self, sim):
        for _ in range(10):
            sim.timeout(1.0)
        sim.run(max_events=3)
        assert sim.events_processed == 3


class TestEvent:
    def test_succeed_fires_callbacks(self, sim):
        event = sim.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")


class TestProcess:
    def test_sequential_timeouts(self, sim):
        log = []

        def body():
            yield Timeout(sim, 2.0)
            log.append(sim.now)
            yield Timeout(sim, 3.0)
            log.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert log == [2.0, 5.0]

    def test_return_value_propagates(self, sim):
        def child():
            yield Timeout(sim, 1.0)
            return "done"

        def parent():
            value = yield sim.spawn(child())
            return value

        proc = sim.spawn(parent())
        sim.run()
        assert proc.value == "done"

    def test_wait_on_triggered_event_resumes(self, sim):
        event = sim.event()
        event.succeed("early")

        def body():
            value = yield event
            return value

        proc = sim.spawn(body())
        sim.run()
        assert proc.value == "early"

    def test_yielding_non_event_raises(self, sim):
        def body():
            yield 42

        sim.spawn(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_in_waited_event_rethrown(self, sim):
        event = sim.event()

        def body():
            try:
                yield event
            except ValueError as exc:
                return f"caught {exc}"

        proc = sim.spawn(body())
        event.fail(ValueError("boom"))
        sim.run()
        assert proc.value == "caught boom"

    def test_process_body_must_be_generator(self, sim):
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_alive_flag(self, sim):
        def body():
            yield Timeout(sim, 1.0)

        proc = sim.spawn(body())
        assert proc.alive
        sim.run()
        assert not proc.alive


class TestDeterminism:
    def test_tie_break_is_fifo(self, sim):
        order = []

        def body(tag):
            yield Timeout(sim, 1.0)
            order.append(tag)

        for tag in range(5):
            sim.spawn(body(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_identical_runs_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def body(tag, delay):
                yield Timeout(sim, delay)
                trace.append((tag, sim.now))
                yield Timeout(sim, delay * 2)
                trace.append((tag, sim.now))

            for tag in range(4):
                sim.spawn(body(tag, 1.0 + tag * 0.5))
            sim.run()
            return trace

        assert run_once() == run_once()


class TestCombinators:
    def test_anyof_first_wins(self, sim):
        fast = Timeout(sim, 1.0)
        slow = Timeout(sim, 5.0)

        def body():
            winner = yield AnyOf(sim, [slow, fast])
            return winner

        proc = sim.spawn(body())
        sim.run()
        assert proc.value is fast
        assert sim.now == 5.0  # slow still fires

    def test_allof_waits_for_all(self, sim):
        def body():
            yield AllOf(sim, [Timeout(sim, 1.0), Timeout(sim, 4.0)])
            return sim.now

        proc = sim.spawn(body())
        sim.run()
        assert proc.value == 4.0

    def test_anyof_empty_rejected(self, sim):
        with pytest.raises(SimulationError):
            AnyOf(sim, [])

    def test_allof_with_pretriggered_events(self, sim):
        done = sim.event()
        done.succeed()

        def body():
            yield AllOf(sim, [done])
            return "ok"

        proc = sim.spawn(body())
        sim.run()
        assert proc.value == "ok"

    def test_anyof_pretriggered_registers_no_callbacks(self, sim):
        """A pre-triggered input decides AnyOf at construction; the
        still-pending inputs must not pick up dangling callbacks."""
        done = sim.event()
        done.succeed("early")
        pending = sim.event()
        any_of = AnyOf(sim, [pending, done])
        assert pending.callbacks == []
        assert done.callbacks == []

        def body():
            winner = yield any_of
            return winner

        proc = sim.spawn(body())
        sim.run()
        assert proc.value is done

    def test_anyof_mixed_triggered_failure_is_consumed(self, sim):
        """A pre-failed input wins AnyOf at construction; the
        combinator consumed its outcome, so the failure does not
        surface from the run loop as unhandled."""
        failed = sim.event()
        failed.fail(ValueError("pre-failed"))
        pending = sim.event()
        any_of = AnyOf(sim, [pending, failed])
        assert pending.callbacks == []

        def body():
            winner = yield any_of
            return winner

        proc = sim.spawn(body())
        sim.run()  # must not raise: AnyOf defused the failed input
        assert proc.value is failed


class TestSleep:
    def test_sleep_advances_clock(self, sim):
        log = []

        def body():
            yield Sleep(2.5)
            log.append(sim.now)
            yield Sleep(1.5)
            log.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert log == [2.5, 4.0]

    def test_sleep_matches_timeout_timestamps(self):
        """Sleep is a drop-in for yielding a fresh Timeout."""
        def run_once(make_delay):
            sim = Simulator()
            trace = []

            def body(tag, delay):
                for _ in range(3):
                    yield make_delay(sim, delay)
                    trace.append((tag, sim.now))

            for tag in range(4):
                sim.spawn(body(tag, 1.0 + 0.5 * tag))
            sim.run()
            return trace

        with_timeout = run_once(lambda sim, d: Timeout(sim, d))
        with_sleep = run_once(lambda sim, d: Sleep(d))
        assert with_sleep == with_timeout

    def test_simulator_sleep_returns_marker(self, sim):
        marker = sim.sleep(3.0)
        assert isinstance(marker, Sleep)
        assert marker.delay == 3.0

    def test_simulator_sleep_schedules_callback(self, sim):
        seen = []
        assert sim.sleep(2.0, seen.append, "fired") is None
        sim.run()
        assert seen == ["fired"]
        assert sim.now == 2.0


class TestFailureSurfacing:
    def test_process_failure_with_waiter_fails_once(self, sim):
        """A crashing child must fail its Process event exactly once
        and not re-raise into the dispatch loop (the double-surfacing
        bug): the waiting parent sees the error, the run completes,
        and later events still fire."""
        def child():
            yield Timeout(sim, 1.0)
            raise RuntimeError("child crashed")

        def parent():
            try:
                yield sim.spawn(child())
            except RuntimeError as exc:
                return f"handled {exc}"

        proc = sim.spawn(parent())
        late = []
        Timeout(sim, 10.0).callbacks.append(lambda e: late.append(sim.now))
        sim.run()
        assert proc.value == "handled child crashed"
        assert late == [10.0]

    def test_unwaited_process_failure_surfaces(self, sim):
        """With nobody waiting, a crashed process must not vanish."""
        def body():
            yield Timeout(sim, 1.0)
            raise RuntimeError("nobody listening")

        sim.spawn(body())
        with pytest.raises(RuntimeError, match="nobody listening"):
            sim.run()

    def test_unwaited_failure_does_not_kill_alive_flag_twice(self, sim):
        def body():
            yield Timeout(sim, 1.0)
            raise RuntimeError("boom")

        proc = sim.spawn(body())
        with pytest.raises(RuntimeError):
            sim.run()
        assert not proc.alive
        assert proc.triggered

    def test_handled_failure_does_not_resurface(self, sim):
        """Once a waiter consumes the failure, draining the heap again
        must not re-raise it."""
        def child():
            yield Timeout(sim, 1.0)
            raise RuntimeError("consumed")

        def parent():
            try:
                yield sim.spawn(child())
            except RuntimeError:
                pass

        sim.spawn(parent())
        sim.run()
        sim.timeout(5.0)
        assert sim.run() == 6.0
