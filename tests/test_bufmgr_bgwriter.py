"""Tests for the background writer daemon."""

from __future__ import annotations

import pytest

from repro.bufmgr.bgwriter import BackgroundWriter
from repro.bufmgr.manager import BufferManager
from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import DirectHandler, ThreadSlot
from repro.core.config import BPConfig
from repro.db.storage import DiskArray
from repro.errors import ConfigError
from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.policies.lru import LRUPolicy
from repro.simcore.cpu import ProcessorPool
from repro.simcore.engine import Simulator, Timeout
from repro.sync.locks import SimLock


def build(sim, capacity=8):
    costs = CostModel(user_work_us=1.0, disk_read_us=50.0,
                      disk_concurrency=4)
    policy = LRUPolicy(capacity)
    lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
    cache = MetadataCacheModel(costs)
    handler = DirectHandler(policy, lock, cache, costs,
                            BPConfig.baseline())
    disk = DiskArray(sim, costs.disk_read_us, costs.disk_concurrency)
    manager = BufferManager(sim, capacity, policy, handler, costs,
                            disk=disk)
    return manager, disk


class TestBackgroundWriter:
    def test_cleans_dirty_pages(self, sim):
        manager, disk = build(sim)
        pages = [PageId("t", block) for block in range(4)]
        manager.warm_with(pages)
        for page in pages:
            manager.lookup(page).dirty = True
        pool = ProcessorPool(sim, 2, 0.5)
        shared = {"stop": False}
        writer = BackgroundWriter(sim, manager, pool, interval_us=100.0,
                                  batch_pages=2, shared_stop=shared)
        writer.start()

        def stopper():
            yield Timeout(sim, 1000.0)
            shared["stop"] = True

        sim.spawn(stopper())
        sim.run()
        assert writer.pages_cleaned == 4
        assert disk.writes == 4
        for page in pages:
            assert not manager.lookup(page).dirty

    def test_skips_pinned_pages(self, sim):
        manager, disk = build(sim)
        page = PageId("t", 0)
        manager.warm_with([page])
        desc = manager.lookup(page)
        desc.dirty = True
        desc.pin()
        pool = ProcessorPool(sim, 2, 0.5)
        shared = {"stop": False}
        writer = BackgroundWriter(sim, manager, pool, interval_us=100.0,
                                  shared_stop=shared)
        writer.start()

        def stopper():
            yield Timeout(sim, 500.0)
            shared["stop"] = True

        sim.spawn(stopper())
        sim.run()
        assert writer.pages_cleaned == 0
        assert desc.dirty

    def test_stop_method(self, sim):
        manager, _ = build(sim)
        pool = ProcessorPool(sim, 1, 0.0)
        writer = BackgroundWriter(sim, manager, pool, interval_us=50.0)
        process = writer.start()
        writer.stop()
        sim.run()
        assert not process.alive
        assert writer.sweeps <= 1

    def test_reduces_synchronous_write_backs_at_scale(self):
        from repro.harness.experiment import ExperimentConfig, run_experiment
        base = ExperimentConfig(
            system="pgclock", workload="dbt2",
            workload_kwargs={"n_warehouses": 8}, n_processors=4,
            buffer_pages=800, use_disk=True, target_accesses=15_000,
            seed=42)
        without = run_experiment(base)
        with_writer = run_experiment(
            base.with_params(background_writer=True))
        assert with_writer.bgwriter_cleaned > 0
        assert with_writer.write_backs < without.write_backs

    def test_validation(self, sim):
        costs = CostModel()
        policy = LRUPolicy(4)
        lock = SimLock(sim)
        cache = MetadataCacheModel(costs)
        handler = DirectHandler(policy, lock, cache, costs,
                                BPConfig.baseline())
        manager = BufferManager(sim, 4, policy, handler, costs)  # no disk
        pool = ProcessorPool(sim, 1, 0.0)
        with pytest.raises(ConfigError):
            BackgroundWriter(sim, manager, pool)
        manager_with_disk, _ = build(Simulator())
        with pytest.raises(ConfigError):
            BackgroundWriter(sim, manager_with_disk, pool,
                             interval_us=0.0)
        with pytest.raises(ConfigError):
            BackgroundWriter(sim, manager_with_disk, pool, batch_pages=0)
