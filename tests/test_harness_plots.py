"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.harness.plots import ascii_chart


class TestAsciiChart:
    def test_basic_layout(self):
        chart = ascii_chart({"up": [(1, 1.0), (2, 2.0), (4, 4.0)]},
                            title="test chart", width=20, height=6)
        lines = chart.splitlines()
        assert lines[0] == "test chart"
        assert "A=up" in chart
        # Axis frame present.
        assert any(line.strip().startswith("+") for line in lines)
        # Max on top row, min on bottom row labels.
        assert lines[1].lstrip().startswith("4")
        assert lines[6].lstrip().startswith("1")

    def test_monotone_series_positions(self):
        chart = ascii_chart({"s": [(1, 1.0), (10, 10.0)]},
                            width=20, height=6)
        lines = [line for line in chart.splitlines() if "|" in line]
        first_row = next(i for i, line in enumerate(lines) if "A" in line)
        last_row = max(i for i, line in enumerate(lines) if "A" in line)
        # Higher value renders on a higher (earlier) row.
        assert first_row < last_row

    def test_overlapping_points_marked(self):
        chart = ascii_chart({"a": [(1, 1.0)], "b": [(1, 1.0)]},
                            width=20, height=6)
        assert "~" in chart

    def test_log_axis_clips_zeros(self):
        chart = ascii_chart({"c": [(1, 0.0), (2, 10.0), (4, 10000.0)]},
                            width=24, height=8, log_y=True)
        assert "(log y axis)" in chart
        # Renders without error and keeps every x position drawable.
        assert chart.count("C") == 0  # symbol is A (first series)
        assert chart.count("A") >= 2

    def test_constant_series(self):
        chart = ascii_chart({"flat": [(1, 5.0), (2, 5.0), (3, 5.0)]},
                            width=20, height=5)
        assert "A" in chart

    def test_single_point(self):
        chart = ascii_chart({"dot": [(1, 1.0)]}, width=20, height=5)
        grid_lines = [line for line in chart.splitlines() if "|" in line]
        assert sum(line.count("A") for line in grid_lines) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            ascii_chart({})
        with pytest.raises(ConfigError):
            ascii_chart({"empty": []})
        with pytest.raises(ConfigError):
            ascii_chart({"s": [(1, 1)]}, width=4, height=2)
        too_many = {f"s{i}": [(1, 1)] for i in range(20)}
        with pytest.raises(ConfigError):
            ascii_chart(too_many)

    def test_many_series_distinct_symbols(self):
        series = {f"series{i}": [(i, float(i + 1))] for i in range(5)}
        chart = ascii_chart(series, width=30, height=8)
        for symbol in "ABCDE":
            assert f"{symbol}=series" in chart

    def test_cli_charts_flag(self, capsys):
        from repro.harness.cli import main as cli_main
        # table1 has no charts; the flag must not break it.
        assert cli_main(["table1", "--charts"]) == 0
        assert "pgclock" in capsys.readouterr().out
