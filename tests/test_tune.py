"""Tuning-sweep tests: Fig. 8 golden sweep, adapter convergence,
byte-determinism of the tune record."""

from __future__ import annotations

import json

import pytest

from repro.control.tune import (TuneConfig, adapter_probe, adaptive_probe,
                                pool_capacity, run_tune, static_best,
                                sweep_grid)
from repro.errors import ConfigError
from repro.workloads.registry import make_workload

#: The validated Fig. 8 regime: eviction pressure (pool = ws/4) makes
#: the miss path exercise the blocking lock, so contention falls
#: monotonically as the threshold rises.
FIG8 = TuneConfig(workload="dbt1", thresholds=(1, 8, 32, 64),
                  queue_sizes=(128,), prefetch=(False,),
                  n_processors=16, target_accesses=4_000,
                  buffer_fraction=0.25, seed=42)

#: Small grid for the fast determinism / structure tests.
SMALL = TuneConfig(workload="dbt1", thresholds=(1, 8), queue_sizes=(32,),
                   prefetch=(False,), n_processors=4,
                   target_accesses=800, seed=7,
                   adaptive_workloads=("tablescan", "dbt1"))


@pytest.fixture(scope="module")
def fig8_sweep():
    workload = make_workload(FIG8.workload, seed=FIG8.seed)
    cells = sweep_grid(FIG8, workload=workload)
    best = static_best(cells)
    adapter = adapter_probe(FIG8, best, workload=workload)
    return cells, best, adapter


@pytest.fixture(scope="module")
def adaptive_records():
    return adaptive_probe(FIG8)


class TestTuneConfig:
    def test_defaults_validate(self):
        TuneConfig().validate()

    def test_needs_axes(self):
        with pytest.raises(ConfigError):
            TuneConfig(thresholds=()).validate()
        with pytest.raises(ConfigError):
            TuneConfig(queue_sizes=()).validate()

    def test_thresholds_must_fit_every_queue(self):
        with pytest.raises(ConfigError):
            TuneConfig(thresholds=(1, 64), queue_sizes=(32,)).validate()
        with pytest.raises(ConfigError):
            TuneConfig(thresholds=(0, 8)).validate()

    def test_adaptive_comparison_needs_two_workloads(self):
        with pytest.raises(ConfigError):
            TuneConfig(adaptive_workloads=("dbt1",)).validate()

    def test_buffer_fraction_bounds(self):
        with pytest.raises(ConfigError):
            TuneConfig(buffer_fraction=0.0).validate()
        with pytest.raises(ConfigError):
            TuneConfig(buffer_fraction=1.5).validate()
        # An explicit pool size makes the fraction irrelevant.
        TuneConfig(buffer_pages=256, buffer_fraction=9.0).validate()

    def test_with_params(self):
        assert SMALL.with_params(seed=9).seed == 9

    def test_pool_capacity(self):
        workload = make_workload("dbt1", seed=7)
        working_set = len(workload.working_set_pages())
        assert pool_capacity(TuneConfig(buffer_pages=512),
                             workload) == 512
        fraction = pool_capacity(TuneConfig(buffer_fraction=0.25),
                                 workload)
        assert fraction == max(64, working_set // 4)


class TestStaticBest:
    def test_grid_order_breaks_ties(self):
        cells = [{"throughput_tps": 10.0, "batch_threshold": 1},
                 {"throughput_tps": 10.0, "batch_threshold": 8},
                 {"throughput_tps": 9.0, "batch_threshold": 32}]
        assert static_best(cells) is cells[0]

    def test_picks_maximum(self):
        cells = [{"throughput_tps": 1.0}, {"throughput_tps": 3.0},
                 {"throughput_tps": 2.0}]
        assert static_best(cells) is cells[1]


class TestFig8GoldenSweep:
    """Satellite: the paper's threshold-sensitivity shape, locked."""

    def test_grid_covers_every_cell(self, fig8_sweep):
        cells, _, _ = fig8_sweep
        assert [cell["batch_threshold"] for cell in cells] == [1, 8, 32, 64]
        assert all(cell["system"] == "pgBat" for cell in cells)
        assert all(cell["queue_size"] == 128 for cell in cells)

    def test_contention_monotonically_non_increasing(self, fig8_sweep):
        cells, _, _ = fig8_sweep
        rates = [cell["contention_rate"] for cell in cells]
        per_million = [cell["contention_per_million"] for cell in cells]
        assert rates == sorted(rates, reverse=True)
        assert per_million == sorted(per_million, reverse=True)
        # The sweep is only meaningful under real contention.
        assert rates[0] > rates[-1] > 0.0

    def test_batching_amortization_visible(self, fig8_sweep):
        cells, _, _ = fig8_sweep
        # Larger thresholds commit bigger batches...
        batches = [cell["mean_batch_size"] for cell in cells]
        assert batches == sorted(batches)
        # ...and the paper's claim: batching must not hurt hit ratios.
        # (Thread interleavings shift with the commit cadence, so the
        # measured window wobbles a little; the band stays tight.)
        ratios = [cell["hit_ratio"] for cell in cells]
        assert max(ratios) - min(ratios) < 0.05

    def test_byte_deterministic_cell(self, fig8_sweep):
        cells, _, _ = fig8_sweep
        workload = make_workload(FIG8.workload, seed=FIG8.seed)
        rerun = sweep_grid(FIG8.with_params(thresholds=(8,)),
                           workload=workload)[0]
        assert json.dumps(rerun, sort_keys=True) == \
            json.dumps(cells[1], sort_keys=True)


class TestAdapterConvergence:
    """Acceptance: the online adapter lands within 10% of static-best."""

    def test_walks_up_from_the_worst_threshold(self, fig8_sweep):
        _, _, adapter = fig8_sweep
        assert adapter["start_threshold"] == 1
        assert adapter["batch_threshold"] > adapter["start_threshold"]
        assert adapter["controller"]["controller"] == "threshold"
        assert adapter["controller"]["decisions"] >= 1

    def test_within_ten_percent_of_static_best(self, fig8_sweep):
        _, best, adapter = fig8_sweep
        assert adapter["fraction_of_best"] >= 0.9
        assert adapter["throughput_tps"] <= best["throughput_tps"] * 1.01


class TestRunTuneRecord:
    def test_byte_deterministic(self):
        first = json.dumps(run_tune(SMALL), sort_keys=True)
        second = json.dumps(run_tune(SMALL), sort_keys=True)
        assert first == second

    def test_record_structure(self):
        record = run_tune(SMALL)
        assert set(record) == {"workload", "n_processors",
                               "target_accesses", "buffer_pages", "seed",
                               "thresholds", "queue_sizes", "prefetch",
                               "grid", "static_best", "adapter",
                               "adaptive"}
        assert len(record["grid"]) == 2
        assert record["static_best"] in record["grid"]
        assert record["adapter"]["fraction_of_best"] > 0.0
        assert len(record["adaptive"]) == 2
        for entry in record["adaptive"]:
            assert set(entry["hit_ratios"]) == {"adaptive", "lru", "lfu"}
            assert entry["ok"]

    def test_invalid_config_rejected_before_any_run(self):
        with pytest.raises(ConfigError):
            run_tune(SMALL.with_params(thresholds=(64,),
                                       queue_sizes=(32,)))


class TestAdaptiveProbe:
    """Acceptance: adaptive >= min(experts) on >= 2 workloads."""

    def test_adaptive_never_below_floor(self, adaptive_records):
        records = adaptive_records
        assert len(records) >= 2
        for entry in records:
            assert entry["ok"], entry
            assert entry["hit_ratios"]["adaptive"] >= entry["floor"] - 1e-9

    def test_experts_separate_on_tablescan(self, adaptive_records):
        tablescan = next(entry for entry in adaptive_records
                         if entry["workload"] == "tablescan")
        ratios = tablescan["hit_ratios"]
        assert abs(ratios["lru"] - ratios["lfu"]) > 0.01
        # Adaptive tracks the better expert, not just the floor.
        assert ratios["adaptive"] >= max(ratios["lru"],
                                         ratios["lfu"]) - 0.05
