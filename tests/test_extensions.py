"""Tests for the extension systems beyond the paper's five:

* the §III-A rejected alternative (shared FIFO queue);
* the §V-A distributed-lock comparator;
* simulated hash-bucket locks (validating §II's dismissal of them).
"""

from __future__ import annotations

import random

import pytest

from repro.bufmgr.manager import BufferManager
from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import DirectHandler, ThreadSlot
from repro.core.config import BPConfig
from repro.core.shared_queue import SharedQueueHandler
from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.systems import build_system, system_spec
from repro.policies.lru import LRUPolicy
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator
from repro.sync.locks import SimLock


def small_run(system, **overrides):
    config = ExperimentConfig(
        system=system, workload="dbt1", workload_kwargs={"scale": 0.1},
        n_processors=8, target_accesses=12_000, seed=19, **overrides)
    return run_experiment(config)


class TestSharedQueueSystem:
    def test_spec_and_build(self, tiny_machine):
        spec = system_spec("pgBatShared")
        assert spec.name == "pgBatShared"
        sim = Simulator()
        build = build_system("pgBatShared", sim, 64, tiny_machine)
        assert isinstance(build.handler, SharedQueueHandler)
        assert "record_lock" in build.extra

    def test_shared_queue_pays_synchronization_cost(self):
        private = small_run("pgBat")
        shared = small_run("pgBatShared")
        # The record lock turns every hit back into a lock acquisition:
        # total lock traffic explodes relative to private queues.
        assert (shared.lock_stats.requests
                > 10 * max(1, private.lock_stats.requests))
        # And it becomes a contention point of its own.
        assert (shared.contention_per_million
                > private.contention_per_million)

    def test_shared_queue_still_correct(self, sim):
        # Functional check: hits recorded through the shared queue are
        # eventually committed and the policy sees them.
        costs = CostModel(user_work_us=1.0)
        policy = LRUPolicy(8)
        lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
        record_lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
        cache = MetadataCacheModel(costs)
        handler = SharedQueueHandler(
            policy, lock, cache, costs,
            BPConfig.batching_only(queue_size=4, batch_threshold=4),
            record_lock)
        manager = BufferManager(sim, 8, policy, handler, costs)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=4)

        def body():
            for page in pages[:4]:
                yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        assert handler.shared_queue.total_committed == 4
        # The policy's LRU order reflects the committed accesses.
        assert list(policy.lru_order())[-4:] == pages[:4]


class TestDistributedSystem:
    def test_contention_spread_but_hot_partition_remains(self):
        result = small_run("pgDist")
        assert result.accesses > 0
        # Sanity: it runs, and hot pages (index roots) make lock load
        # uneven across partitions — the paper's SV-A critique #2.
        # (Checked via the per-partition request counts.)

    def test_hot_partition_skew(self, tiny_machine):
        sim = Simulator()
        build = build_system("pgDist", sim, 256, tiny_machine)
        locks = build.extra["locks"]
        assert len(locks) >= 2

    def test_partition_routing_stable(self):
        from repro.policies.partitioned import PartitionedPolicy
        from repro.policies.registry import make_policy
        policy = PartitionedPolicy(64, 8,
                                   lambda cap: make_policy("lru", cap))
        page = PageId("t", 17)
        first = policy.partition_of(page)
        # Evict and re-admit: must land in the same partition (Mr.LRU's
        # hashing guarantee, without which 2Q/LIRS ghosts break).
        assert policy.partition_of(page) == first

    def test_partitioned_capacity_distribution(self):
        from repro.policies.partitioned import PartitionedPolicy
        from repro.policies.registry import make_policy
        policy = PartitionedPolicy(10, 3,
                                   lambda cap: make_policy("lru", cap))
        capacities = sorted(p.capacity for p in policy.partitions)
        assert capacities == [3, 3, 4]
        assert sum(capacities) == 10


class TestBucketLocks:
    def test_many_buckets_are_free(self):
        # SII: with many buckets, simulating the bucket locks changes
        # nothing measurable.
        plain = small_run("pgclock")
        locked = small_run("pgclock", simulate_bucket_locks=True)
        assert locked.throughput_tps == pytest.approx(
            plain.throughput_tps, rel=0.03)

    def test_bucket_lock_stats_exposed(self, tiny_machine):
        sim = Simulator()
        build = build_system("pgclock", sim, 64, tiny_machine,
                             simulate_bucket_locks=True)
        assert build.manager.bucket_lock_stats() is not None
        build2 = build_system("pgclock", sim, 64, tiny_machine)
        assert build2.manager.bucket_lock_stats() is None

    def test_single_bucket_degenerates_to_global_lock(self, sim):
        # The paper's reasoning inverted: with ONE bucket the "hash
        # table lock" becomes a global hot spot and contention appears.
        costs = CostModel(user_work_us=2.0, context_switch_us=1.0)
        policy = LRUPolicy(32)
        lock = SimLock(sim, grant_cost_us=0.15, try_cost_us=0.1)
        cache = MetadataCacheModel(costs)
        handler = DirectHandler(policy, lock, cache, costs,
                                BPConfig.baseline())
        manager = BufferManager(sim, 32, policy, handler, costs,
                                n_hash_buckets=1,
                                simulate_bucket_locks=True)
        pages = [PageId("t", block) for block in range(32)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 4, 1.0)

        def body(slot, own_rng):
            for _ in range(200):
                yield from manager.access(slot,
                                          pages[own_rng.randrange(32)])
                yield from slot.thread.run_for(own_rng.uniform(0.2, 1.0))

        for index in range(4):
            thread = CpuBoundThread(pool, f"t{index}")
            slot = ThreadSlot(thread, index, queue_size=8)
            thread.start(body(slot, random.Random(index)))
        sim.run()
        stats = manager.bucket_lock_stats()
        assert stats.requests == 800
        assert stats.contentions > 0
