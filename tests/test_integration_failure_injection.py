"""Failure-injection and stress tests.

These exercise the ugly paths: pages invalidated between enqueue and
commit, eviction racing queued hits, frame recycling (ABA), fully
pinned pools inside the DES, and long mixed runs with invariant checks.
"""

from __future__ import annotations

import random

import pytest

from repro.bufmgr.manager import BufferManager
from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import BatchedHandler, ThreadSlot
from repro.core.config import BPConfig
from repro.errors import BufferError_
from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.policies.lru import LRUPolicy
from repro.policies.twoq import TwoQPolicy
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.sync.locks import SimLock


def make_rig(sim, capacity=16, queue_size=8, batch_threshold=4,
             policy_cls=TwoQPolicy):
    costs = CostModel(user_work_us=1.0, context_switch_us=0.5)
    policy = policy_cls(capacity)
    lock = SimLock(sim, grant_cost_us=costs.lock_grant_us,
                   try_cost_us=costs.try_lock_us)
    cache = MetadataCacheModel(costs)
    config = BPConfig(batching=True, prefetching=True,
                      queue_size=queue_size,
                      batch_threshold=batch_threshold)
    handler = BatchedHandler(policy, lock, cache, costs, config)
    manager = BufferManager(sim, capacity, policy, handler, costs)
    return manager, policy, lock


class TestInvalidationRaces:
    def test_invalidation_storm_between_commits(self, sim):
        """Random invalidations while wrapped threads run: the system
        must stay consistent and drop stale entries silently."""
        manager, policy, _ = make_rig(sim, capacity=32)
        pages = [PageId("t", block) for block in range(32)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 2, 0.5)
        rng = random.Random(3)
        slots = []

        def worker(slot):
            worker_rng = random.Random(slot.thread_id)
            for _ in range(300):
                page = pages[worker_rng.randrange(32)]
                if manager.lookup(page) is not None:
                    yield from manager.access(slot, page)
                yield from slot.thread.run_for(1.0)

        def chaos(thread):
            for _ in range(60):
                yield from thread.sleep_blocked(5.0)
                victim = pages[rng.randrange(32)]
                desc = manager.lookup(victim)
                if desc is not None and not desc.pinned:
                    manager.invalidate(victim)

        for index in range(3):
            thread = CpuBoundThread(pool, f"w{index}")
            slot = ThreadSlot(thread, index, queue_size=8)
            slots.append(slot)
            thread.start(worker(slot))
        chaos_thread = CpuBoundThread(pool, "chaos")
        chaos_thread.start(chaos(chaos_thread))
        sim.run()
        manager.check_invariants()
        assert sum(slot.stale_entries for slot in slots) > 0

    def test_frame_recycled_to_same_page_commits_fine(self, sim):
        """ABA: a queued entry's page is evicted and re-read into a
        different frame; the stale entry must not corrupt the policy."""
        manager, policy, lock = make_rig(sim, capacity=4, queue_size=8,
                                         batch_threshold=8,
                                         policy_cls=LRUPolicy)
        pages = [PageId("t", block) for block in range(4)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=8)

        def body():
            yield from manager.access(slot, pages[0])   # queued
            manager.invalidate(pages[0])
            # Re-read page 0: lands in the freed frame, then the queue
            # commits during this miss. The stale entry for the *old*
            # incarnation actually matches tag-wise — which is fine:
            # the page is resident again, so replaying the hit is valid.
            yield from manager.access(slot, pages[0])

        thread.start(body())
        sim.run()
        manager.check_invariants()
        assert pages[0] in policy

    def test_other_threads_eviction_makes_entry_stale(self, sim):
        # A queued hit goes stale only if ANOTHER thread evicts the
        # page before commit (the thread's own misses commit first,
        # per Fig. 4's replacement_for_page_miss).
        manager, policy, _ = make_rig(sim, capacity=4, queue_size=8,
                                      batch_threshold=8,
                                      policy_cls=LRUPolicy)
        pages = [PageId("t", block) for block in range(4)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 2, 0.0)
        recorder = CpuBoundThread(pool, "recorder")
        evictor = CpuBoundThread(pool, "evictor")
        slot_a = ThreadSlot(recorder, 0, queue_size=8)
        slot_b = ThreadSlot(evictor, 1, queue_size=8)

        def recorder_body():
            yield from manager.access(slot_a, pages[0])   # queued hit
            # Idle while the evictor churns the pool.
            yield from recorder.sleep_blocked(100.0)
            # This miss commits the (now stale) queue entry.
            yield from manager.access(slot_a, PageId("t", 99))

        def evictor_body():
            yield from evictor.run_for(1.0)
            for block in range(10, 18):
                yield from manager.access(slot_b, PageId("t", block))

        recorder.start(recorder_body())
        evictor.start(evictor_body())
        sim.run()
        manager.check_invariants()
        assert slot_a.stale_entries >= 1


class TestPinStress:
    def test_pinned_working_set_survives_pressure(self, sim):
        manager, policy, _ = make_rig(sim, capacity=8, policy_cls=LRUPolicy)
        protected = [PageId("t", block) for block in range(3)]
        manager.warm_with(protected)
        for page in protected:
            manager.lookup(page).pin()
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=8)

        def body():
            for block in range(100, 160):
                yield from manager.access(slot, PageId("t", block))

        thread.start(body())
        sim.run()
        for page in protected:
            assert page in policy
            assert manager.lookup(page) is not None
        manager.check_invariants()

    def test_fully_pinned_pool_raises_cleanly(self, sim):
        manager, _, _ = make_rig(sim, capacity=2, policy_cls=LRUPolicy)
        pages = [PageId("t", 0), PageId("t", 1)]
        manager.warm_with(pages)
        for page in pages:
            manager.lookup(page).pin()
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=8)

        def body():
            yield from manager.access(slot, PageId("t", 99))

        from repro.errors import PolicyError
        thread.start(body())
        with pytest.raises(PolicyError):
            sim.run()


class TestLongMixedRun:
    @pytest.mark.parametrize("policy_cls", [LRUPolicy, TwoQPolicy])
    def test_invariants_hold_through_long_concurrent_run(self, sim,
                                                         policy_cls):
        manager, _, lock = make_rig(sim, capacity=24,
                                    policy_cls=policy_cls)
        pool = ProcessorPool(sim, 4, 0.5)
        slots = []

        def worker(slot):
            rng = random.Random(slot.thread_id * 17)
            for step in range(400):
                block = rng.randint(0, 60)
                yield from manager.access(slot, PageId("t", block))
                yield from slot.thread.run_for(0.5)
                if step % 50 == 0:
                    yield from slot.thread.yield_cpu()

        for index in range(6):
            thread = CpuBoundThread(pool, f"w{index}")
            slot = ThreadSlot(thread, index, queue_size=8)
            slots.append(slot)
            thread.start(worker(slot))
        sim.run()
        manager.check_invariants()
        assert manager.stats.accesses == 2400
        assert not lock.held
        assert lock.queue_length == 0
        # Every queued access was eventually committed or dropped.
        for slot in slots:
            assert len(slot.queue) == 0 or not slot.queue.full
