"""Tests for the parallel experiment engine and result serialization.

Covers the guarantees ``repro.harness.parallel`` makes: worker-count
resolution (argument over ``REPRO_PARALLEL``), the per-process
workload memo, submission-ordered deterministic results under both
fork and spawn start methods, and graceful serial retry when a worker
dies. Also the serialization contracts parallel execution relies on:
pickle round-trips for configs/results and ``RunResult.from_dict`` as
the exact inverse of ``to_dict``.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.errors import ConfigError
from repro.hardware.machines import (ALTIX_350, POWEREDGE_2900,
                                     machine_by_name)
from repro.harness import parallel
from repro.harness.experiment import (ExperimentConfig, RunResult,
                                      run_experiment)
from repro.harness.parallel import (cached_workload, clear_workload_cache,
                                    resolve_workers, run_many)
from repro.harness.sweeps import run_matrix


@pytest.fixture
def small_configs():
    """Four fast, independent runs spanning systems and seeds."""
    return [
        ExperimentConfig(
            system=system, workload="dbt1",
            workload_kwargs={"scale": 0.05}, machine=ALTIX_350,
            n_processors=2, target_accesses=2500,
            warmup_fraction=0.1, seed=seed)
        for system, seed in (("pgclock", 7), ("pg2Q", 7),
                             ("pgBat", 11), ("pgclock", 11))]


class TestWorkerResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_workers() == 1

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert resolve_workers() == 3

    def test_env_zero_means_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert resolve_workers() == 1

    def test_env_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "auto")
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "8")
        assert resolve_workers(2) == 2
        assert resolve_workers("auto") == (os.cpu_count() or 1)

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            resolve_workers("three")
        with pytest.raises(ConfigError):
            resolve_workers(-1)
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        with pytest.raises(ConfigError):
            resolve_workers()


class TestWorkloadCache:
    def test_same_key_same_instance(self):
        clear_workload_cache()
        first = cached_workload("dbt1", 7, {"scale": 0.05})
        again = cached_workload("dbt1", 7, {"scale": 0.05})
        assert first is again

    def test_key_is_order_insensitive(self):
        clear_workload_cache()
        first = cached_workload("tablescan", 5,
                                {"n_tables": 4, "pages_per_table": 50})
        again = cached_workload("tablescan", 5,
                                {"pages_per_table": 50, "n_tables": 4})
        assert first is again

    def test_distinct_seeds_distinct_instances(self):
        clear_workload_cache()
        assert cached_workload("dbt1", 7, {"scale": 0.05}) is not \
            cached_workload("dbt1", 8, {"scale": 0.05})

    def test_clear_reports_count(self):
        clear_workload_cache()
        cached_workload("dbt1", 7, {"scale": 0.05})
        cached_workload("dbt1", 8, {"scale": 0.05})
        assert clear_workload_cache() == 2

    def test_cached_instance_replays_identically(self, small_configs):
        """Reusing one cached workload across runs must not leak state."""
        clear_workload_cache()
        config = small_configs[0]
        fresh = run_experiment(config).to_dict()
        workload = cached_workload(config.workload, config.seed,
                                   config.workload_kwargs)
        first = run_experiment(config, workload=workload).to_dict()
        second = run_experiment(config, workload=workload).to_dict()
        assert first == fresh
        assert second == fresh


class TestPickleRoundTrip:
    def test_config_pickles(self, small_configs):
        config = small_configs[1]
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_result_pickles(self, small_configs):
        result = run_experiment(small_configs[0])
        clone = pickle.loads(pickle.dumps(result))
        assert clone.to_dict() == result.to_dict()
        assert clone.config == result.config


class TestFromDict:
    def test_from_dict_inverts_to_dict(self, small_configs):
        result = run_experiment(small_configs[2])
        record = result.to_dict()
        rebuilt = RunResult.from_dict(record)
        assert rebuilt.to_dict() == record
        assert rebuilt.config.machine is ALTIX_350

    def test_unregistered_machine_gets_stand_in(self, tiny_machine):
        config = ExperimentConfig(
            system="pgclock", workload="dbt1",
            workload_kwargs={"scale": 0.05}, machine=tiny_machine,
            n_processors=2, target_accesses=2000, seed=3)
        record = run_experiment(config).to_dict()
        rebuilt = RunResult.from_dict(record)
        assert rebuilt.config.machine.name == tiny_machine.name
        assert rebuilt.to_dict() == record

    def test_machine_by_name(self):
        assert machine_by_name("Altix350") is ALTIX_350
        assert machine_by_name("PowerEdge2900") is POWEREDGE_2900
        with pytest.raises(ConfigError):
            machine_by_name("Cray1")
        stand_in = machine_by_name("Cray1", strict=False)
        assert stand_in.name == "Cray1"


class TestRunMany:
    def test_serial_matches_individual_runs(self, small_configs):
        expected = [run_experiment(c).to_dict() for c in small_configs]
        got = [r.to_dict() for r in run_many(small_configs, max_workers=1)]
        assert got == expected

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_parallel_matches_serial(self, small_configs, start_method):
        serial = [r.to_dict()
                  for r in run_many(small_configs, max_workers=1)]
        parallel_results = run_many(small_configs, max_workers=4,
                                    mp_context=start_method)
        assert [r.to_dict() for r in parallel_results] == serial

    def test_run_matrix_parallel_is_deterministic(self, tiny_machine):
        grid = dict(systems=["pgclock", "pg2Q"], workload_names=["dbt1"],
                    machine=ALTIX_350, processors=(1, 2),
                    target_accesses=2500, seed=5)
        serial = [r.to_dict() for r in run_matrix(**grid)]
        fanned = [r.to_dict()
                  for r in run_matrix(**grid, max_workers=4)]
        assert fanned == serial

    def test_worker_crash_falls_back_to_serial(self, small_configs,
                                               monkeypatch):
        """A run whose worker dies is retried in-process."""
        parent = os.getpid()
        real = parallel._run_one

        def crashy(config):
            if os.getpid() != parent:
                raise RuntimeError("worker lost")
            return real(config)

        # Fork children inherit the patched module, so every worker
        # crashes and every run must come back via the serial retry.
        monkeypatch.setattr(parallel, "_run_one", crashy)
        expected = [real(c).to_dict() for c in small_configs]
        results = run_many(small_configs, max_workers=2,
                           mp_context="fork")
        assert [r.to_dict() for r in results] == expected

    def test_deterministic_error_reraises(self):
        bad = ExperimentConfig(
            system="pgNope", workload="dbt1",
            workload_kwargs={"scale": 0.05}, machine=ALTIX_350,
            n_processors=2, target_accesses=2000, seed=3)
        with pytest.raises(ConfigError):
            run_many([bad, bad], max_workers=2, mp_context="fork")

    def test_empty_input(self):
        assert run_many([], max_workers=4) == []
