"""Tests for the hit-ratio study CLI."""

from __future__ import annotations

import pytest

from repro.analysis.cli import main as cli_main
from repro.workloads import save_trace
from repro.workloads.traces import SyntheticTrace


class TestAnalysisCli:
    def test_workload_mode(self, capsys):
        assert cli_main(["--workload", "dbt1", "--policies", "2q",
                         "clock", "--fractions", "0.1",
                         "--accesses", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Hit ratios" in out
        assert "2q" in out and "clock" in out

    def test_trace_mode(self, tmp_path, capsys):
        trace = SyntheticTrace(seed=5).zipf("t", 100, 2000).accesses
        path = tmp_path / "t.txt"
        save_trace(path, trace)
        assert cli_main(["--trace", str(path), "--policies", "lru",
                         "--capacities", "20", "50"]) == 0
        out = capsys.readouterr().out
        assert "20" in out and "50" in out

    def test_wrapped_column(self, capsys):
        assert cli_main(["--workload", "tablescan", "--policies", "2q",
                         "--wrapped", "--capacities", "500",
                         "--accesses", "4000"]) == 0
        out = capsys.readouterr().out
        assert "2q+BP" in out

    def test_missing_trace_file_reports_error(self, capsys):
        assert cli_main(["--trace", "/nonexistent/file.txt"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["--policies", "not-a-policy"])
