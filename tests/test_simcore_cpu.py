"""Tests for the processor pool and CPU-bound threads."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Event, Timeout


def run_threads(sim, pool, bodies):
    threads = []
    for index, body_factory in enumerate(bodies):
        thread = CpuBoundThread(pool, name=f"t{index}")
        thread.start(body_factory(thread))
        threads.append(thread)
    sim.run()
    return threads


class TestProcessorPool:
    def test_requires_processor(self, sim):
        with pytest.raises(SimulationError):
            ProcessorPool(sim, 0, 0.0)

    def test_parallel_threads_overlap(self, sim):
        pool = ProcessorPool(sim, 2, context_switch_us=0.0)

        def body(thread):
            yield from thread.run_for(10.0)

        run_threads(sim, pool, [body, body])
        assert sim.now == 10.0  # two CPUs -> fully parallel

    def test_overcommit_serializes(self, sim):
        pool = ProcessorPool(sim, 1, context_switch_us=0.0)

        def body(thread):
            yield from thread.run_for(10.0)

        run_threads(sim, pool, [body, body])
        assert sim.now == 20.0  # one CPU -> back-to-back

    def test_context_switch_cost_charged_on_dispatch(self, sim):
        pool = ProcessorPool(sim, 1, context_switch_us=2.0)

        def body(thread):
            yield from thread.run_for(10.0)

        run_threads(sim, pool, [body])
        assert sim.now == 12.0  # dispatch ctx + work
        assert pool.context_switch_time == 2.0

    def test_utilization(self, sim):
        pool = ProcessorPool(sim, 2, context_switch_us=0.0)

        def body(thread):
            yield from thread.run_for(10.0)

        run_threads(sim, pool, [body])
        # One thread busy 10us on a 2-CPU pool -> 50%.
        assert pool.utilization(sim.now) == pytest.approx(0.5)

    def test_release_overflow_detected(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)
        with pytest.raises(SimulationError):
            pool._release()


class TestCharges:
    def test_charges_accumulate_until_spend(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)
        observed = []

        def body(thread):
            thread.charge(3.0)
            thread.charge(4.0)
            observed.append(sim.now)
            yield from thread.spend()
            observed.append(sim.now)

        run_threads(sim, pool, [body])
        assert observed == [0.0, 7.0]

    def test_negative_charge_rejected(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        with pytest.raises(SimulationError):
            thread.charge(-1.0)

    def test_cpu_time_accounting(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)

        def body(thread):
            yield from thread.run_for(5.0)
            yield from thread.run_for(7.0)

        threads = run_threads(sim, pool, [body])
        assert threads[0].cpu_time == pytest.approx(12.0)


class TestBlocking:
    def test_wait_releases_cpu(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)
        gate = Event(sim)
        log = []

        def waiter(thread):
            yield from thread.run_for(1.0)
            yield from thread.wait(gate)
            log.append(("waiter", sim.now))

        def runner(thread):
            yield from thread.run_for(5.0)
            log.append(("runner", sim.now))
            gate.succeed()

        run_threads(sim, pool, [waiter, runner])
        # The runner got the CPU while the waiter was blocked; the
        # waiter resumed after the gate opened.
        assert log == [("runner", 6.0), ("waiter", 6.0)]

    def test_blocked_time_accounted(self, sim):
        pool = ProcessorPool(sim, 2, 0.0)

        def sleeper(thread):
            yield from thread.sleep_blocked(25.0)

        threads = run_threads(sim, pool, [sleeper])
        assert threads[0].blocked_time == pytest.approx(25.0)
        assert threads[0].blocks == 1

    def test_woken_thread_gets_priority_dispatch(self, sim):
        # Three threads, one CPU: a woken sleeper queues ahead of a
        # voluntarily-yielded thread (sleeper boost).
        pool = ProcessorPool(sim, 1, 0.0)
        order = []

        def sleeper(thread):
            yield from thread.sleep_blocked(5.0)
            order.append("sleeper")

        def spinner(thread):
            for _ in range(4):
                yield from thread.run_for(3.0)
                yield from thread.yield_cpu()
                order.append("spinner-leg")

        run_threads(sim, pool, [sleeper, spinner])
        # The sleeper wakes at t=5 mid-leg and must run before the
        # spinner's remaining legs.
        assert order.index("sleeper") <= 2

    def test_quantum_yield(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)
        order = []

        def hog(thread):
            for _ in range(10):
                yield from thread.run_for(10.0)
                yield from thread.maybe_yield(25.0)
            order.append("hog-done")

        def peer(thread):
            yield from thread.run_for(1.0)
            order.append("peer-done")

        run_threads(sim, pool, [hog, peer])
        # Without preemption the peer would finish last; the quantum
        # lets it in after ~30us of hog time.
        assert order == ["peer-done", "hog-done"]

    def test_voluntary_yield_noop_when_alone(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)

        def body(thread):
            yield from thread.run_for(1.0)
            yield from thread.yield_cpu()
            yield from thread.run_for(1.0)

        threads = run_threads(sim, pool, [body])
        assert threads[0].voluntary_yields == 0
        assert sim.now == 2.0

    def test_double_start_rejected(self, sim):
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)

        def body():
            yield Timeout(sim, 1.0)

        thread.start(body())
        with pytest.raises(SimulationError):
            thread.start(body())
