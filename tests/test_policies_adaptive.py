"""Tests for the regret-based adaptive policy and registry contract."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, PolicyError
from repro.policies.adaptive import AdaptivePolicy
from repro.policies.registry import (available_policies, make_policy,
                                     register_policy)


def access(policy, key):
    """One page access; returns True on hit."""
    if key in policy:
        policy.on_hit(key)
        return True
    policy.on_miss(key)
    return False


class TestConstruction:
    def test_needs_two_distinct_policies(self):
        with pytest.raises(PolicyError):
            AdaptivePolicy(8, policies=("lru",))
        with pytest.raises(PolicyError):
            AdaptivePolicy(8, policies=("lru", "lru"))

    def test_decay_and_cooldown_bounds(self):
        with pytest.raises(PolicyError):
            AdaptivePolicy(8, decay=0.0)
        with pytest.raises(PolicyError):
            AdaptivePolicy(8, decay=1.5)
        with pytest.raises(PolicyError):
            AdaptivePolicy(8, cooldown=-1)

    def test_defaults(self):
        policy = AdaptivePolicy(8)
        assert policy.policy_names == ("lru", "lfu")
        assert policy.live_name == "lru"
        assert policy.ghost_size == 8

    def test_any_registered_pair_works(self):
        policy = AdaptivePolicy(8, policies=("clock", "2q"))
        assert [sub.name for sub in policy.subs] == ["clock", "2q"]


class TestResidencySync:
    def test_sub_policies_share_one_resident_set(self):
        policy = AdaptivePolicy(4, policies=("lru", "lfu"))
        for key in [0, 1, 2, 3, 4, 1, 5, 2, 6, 0, 1]:
            access(policy, ("t", key))
            resident_a = set(policy.subs[0].resident_keys())
            resident_b = set(policy.subs[1].resident_keys())
            assert resident_a == resident_b
            policy.check_invariants()
        assert policy.resident_count <= 4

    def test_on_remove_hits_both_subs(self):
        policy = AdaptivePolicy(4)
        for key in range(4):
            access(policy, ("t", key))
        policy.on_remove(("t", 2))
        assert ("t", 2) not in policy
        for sub in policy.subs:
            assert ("t", 2) not in sub
        policy.check_invariants()

    def test_pins_respected_by_both_subs(self):
        policy = AdaptivePolicy(2)
        policy.set_evictable_predicate(lambda key: key != ("t", 0))
        access(policy, ("t", 0))
        access(policy, ("t", 1))
        access(policy, ("t", 2))  # must not evict the pinned page
        assert ("t", 0) in policy
        policy.check_invariants()


class TestGhostAndRegret:
    def test_eviction_lands_in_live_ghost(self):
        policy = AdaptivePolicy(2, cooldown=1_000)
        access(policy, ("t", 0))
        access(policy, ("t", 1))
        access(policy, ("t", 2))  # LRU (live) evicts page 0
        assert ("t", 0) in policy.ghosts[0]
        assert not policy.ghosts[1]

    def test_ghost_hit_bumps_owner_regret(self):
        policy = AdaptivePolicy(2, cooldown=1_000, decay=1.0)
        access(policy, ("t", 0))
        access(policy, ("t", 1))
        access(policy, ("t", 2))  # evicts 0 into lru's ghost
        access(policy, ("t", 0))  # miss that lands in the ghost
        assert policy.ghost_hits == [1, 0]
        assert policy.regret[0] == pytest.approx(1.0)
        assert ("t", 0) not in policy.ghosts[0]

    def test_ghost_is_bounded(self):
        policy = AdaptivePolicy(2, ghost_size=3, cooldown=1_000)
        for key in range(50):
            access(policy, ("t", key))
        assert len(policy.ghosts[0]) <= 3
        policy.check_invariants()

    def test_regret_decays(self):
        policy = AdaptivePolicy(2, cooldown=1_000, decay=0.5)
        access(policy, ("t", 0))
        access(policy, ("t", 1))
        access(policy, ("t", 2))  # evict 0
        access(policy, ("t", 0))  # ghost hit: regret[0] = 1.0
        access(policy, ("t", 9))  # plain miss: decays to 0.5
        assert policy.regret[0] == pytest.approx(0.5)


class TestSwitching:
    def test_lru_hostile_loop_flips_to_lfu(self):
        # A cyclic scan one page wider than the pool is LRU's worst
        # case: every eviction is the next page needed, so lru's ghost
        # absorbs a hit per access and its regret runs away.
        policy = AdaptivePolicy(4, policies=("lru", "lfu"),
                                decay=1.0, margin=0.5, cooldown=0)
        for _ in range(10):
            for key in range(5):
                access(policy, ("loop", key))
        assert policy.switches >= 1
        assert policy.ghost_hits[0] > 0
        policy.check_invariants()

    def test_cooldown_blocks_immediate_flip_back(self):
        policy = AdaptivePolicy(4, decay=1.0, margin=0.0, cooldown=100)
        for _ in range(5):
            for key in range(5):
                access(policy, ("loop", key))
        # Misses since the last switch stay under the cooldown, so at
        # most one flip can have happened in 25 accesses.
        assert policy.switches <= 1


class TestInvariantDetection:
    def test_residency_drift_detected(self):
        policy = AdaptivePolicy(4)
        for key in range(4):
            access(policy, ("t", key))
        policy.subs[1].on_remove(("t", 0))  # sabotage one sub only
        with pytest.raises(PolicyError):
            policy.check_invariants()

    def test_resident_ghost_overlap_detected(self):
        policy = AdaptivePolicy(4)
        for key in range(4):
            access(policy, ("t", key))
        policy.ghosts[0][("t", 1)] = None  # resident page in a ghost
        with pytest.raises(PolicyError):
            policy.check_invariants()

    def test_negative_regret_detected(self):
        policy = AdaptivePolicy(4)
        policy.regret[1] = -0.5
        with pytest.raises(PolicyError):
            policy.check_invariants()


class TestRegistryContract:
    def test_adaptive_is_registered(self):
        names = available_policies()
        assert "adaptive" in names
        assert names == sorted(names)

    def test_make_policy_builds_adaptive_with_kwargs(self):
        policy = make_policy("adaptive", 16, policies=("clock", "lru"))
        assert isinstance(policy, AdaptivePolicy)
        assert policy.policy_names == ("clock", "lru")

    def test_duplicate_registration_is_a_config_error(self):
        from repro.policies.lru import LRUPolicy

        class Shadow(LRUPolicy):
            name = "adaptive-shadow-test"

        register_policy("adaptive-shadow-test", Shadow)
        with pytest.raises(ConfigError):
            register_policy("adaptive-shadow-test", Shadow)
        register_policy("adaptive-shadow-test", Shadow, replace=True)


def workload_trace(name, accesses, seed=42):
    """The first ``accesses`` page references of a workload stream."""
    from repro.workloads.registry import make_workload
    workload = make_workload(name, seed=seed)
    trace = []
    for transaction in workload.transaction_stream(0):
        trace.extend(transaction.pages)
        if len(trace) >= accesses:
            break
    return trace[:accesses], len(workload.working_set_pages())


class TestHitRatioFloor:
    """Acceptance: adaptive never loses to the worse of its experts."""

    @pytest.mark.parametrize("workload", ["tablescan", "dbt1"])
    def test_adaptive_at_least_matches_worse_expert(self, workload):
        from repro.analysis.hitratio import replay
        trace, working_set = workload_trace(workload, accesses=4_000)
        capacity = max(32, working_set // 4)
        ratios = {name: replay(name, trace, capacity).hit_ratio
                  for name in ("lru", "lfu")}
        adaptive = make_policy("adaptive", capacity,
                               policies=("lru", "lfu"))
        result = replay(adaptive, trace)
        adaptive.check_invariants()
        assert result.hit_ratio >= min(ratios.values()) - 1e-9

    def test_adaptive_tracks_the_winning_expert(self):
        # The floor assertion above is vacuous if the experts always
        # tie, so force a separation: a hot set re-read every round
        # while a long cold scan pollutes the pool. LRU lets the scan
        # flush the hot set (every hot access misses); LFU keeps the
        # high-count hot pages. Adaptive starts on LRU, watches its
        # evicted hot pages come straight back through the ghost list,
        # and must defect to LFU.
        from repro.analysis.hitratio import replay
        trace = []
        for round_index in range(100):
            for _ in range(3):  # let hot frequencies accumulate
                for hot in range(8):
                    trace.append(("hot", hot))
            for cold in range(16):
                trace.append(("scan", round_index * 16 + cold))
        capacity = 16
        lru = replay("lru", trace, capacity).hit_ratio
        lfu = replay("lfu", trace, capacity).hit_ratio
        assert lfu > lru + 0.01
        adaptive = make_policy("adaptive", capacity,
                               policies=("lru", "lfu"))
        result = replay(adaptive, trace)
        adaptive.check_invariants()
        assert adaptive.switches >= 1
        assert result.hit_ratio >= min(lru, lfu) - 1e-9
        # Tracking the winner means closing most of the lru->lfu gap.
        assert result.hit_ratio > lru + 0.5 * (lfu - lru)
