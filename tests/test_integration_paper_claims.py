"""Integration tests asserting the paper's qualitative claims.

Each test runs small-but-real simulations and checks an *ordering* the
paper reports, not an absolute number — the orderings are what the
reproduction stands on.
"""

from __future__ import annotations

import pytest

from repro.analysis.hitratio import replay, replay_through_wrapper
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.hardware.machines import ALTIX_350, POWEREDGE_2900
from repro.workloads.base import merged_trace
from repro.workloads.registry import make_workload

TARGET = 25_000


def run(system, n_processors=16, workload="dbt1", machine=ALTIX_350,
        **overrides):
    config = ExperimentConfig(
        system=system, workload=workload,
        workload_kwargs={"scale": 0.15} if workload == "dbt1" else
        {"n_warehouses": 6},
        machine=machine, n_processors=n_processors,
        target_accesses=TARGET, seed=11, **overrides)
    return run_experiment(config)


@pytest.fixture(scope="module")
def sixteen_cpu_results():
    return {name: run(name) for name in
            ("pgclock", "pg2Q", "pgBat", "pgPre", "pgBatPre")}


class TestScalabilityClaims:
    def test_pgclock_has_no_replacement_lock_traffic(self,
                                                     sixteen_cpu_results):
        result = sixteen_cpu_results["pgclock"]
        assert result.lock_stats.requests == 0
        assert result.contention_per_million == 0.0

    def test_pg2q_suffers_heavy_contention(self, sixteen_cpu_results):
        result = sixteen_cpu_results["pg2Q"]
        assert result.contention_per_million > 100_000

    def test_batching_eliminates_contention(self, sixteen_cpu_results):
        # "BP-Wrapper ... improves scalability through reducing lock
        # contention by a factor from 97 to over 9000" (SIV-D); here the
        # factor is even larger.
        pg2q = sixteen_cpu_results["pg2Q"].contention_per_million
        pgbat = sixteen_cpu_results["pgBat"].contention_per_million
        assert pgbat * 97 < pg2q

    def test_batching_restores_throughput(self, sixteen_cpu_results):
        clock = sixteen_cpu_results["pgclock"].throughput_tps
        pgbat = sixteen_cpu_results["pgBat"].throughput_tps
        pgbatpre = sixteen_cpu_results["pgBatPre"].throughput_tps
        assert pgbat > 0.93 * clock
        assert pgbatpre > 0.93 * clock

    def test_pg2q_throughput_at_least_halved(self, sixteen_cpu_results):
        clock = sixteen_cpu_results["pgclock"].throughput_tps
        pg2q = sixteen_cpu_results["pg2Q"].throughput_tps
        assert pg2q < 0.55 * clock

    def test_prefetching_alone_saturates_like_pg2q(self,
                                                   sixteen_cpu_results):
        # SIV-D: "The scalability of pgPre is as poor as that of pg2Q".
        pg2q = sixteen_cpu_results["pg2Q"].throughput_tps
        pgpre = sixteen_cpu_results["pgPre"].throughput_tps
        assert pgpre == pytest.approx(pg2q, rel=0.15)

    def test_response_time_tracks_contention(self, sixteen_cpu_results):
        assert (sixteen_cpu_results["pg2Q"].mean_response_ms
                > 1.5 * sixteen_cpu_results["pgBat"].mean_response_ms)

    def test_batching_mean_batch_near_threshold(self,
                                                sixteen_cpu_results):
        result = sixteen_cpu_results["pgBat"]
        assert 30 <= result.mean_batch_size <= 64


class TestLowConcurrencyClaims:
    def test_prefetching_helps_at_low_concurrency(self):
        # At 2 processors prefetching visibly cuts contention (SIV-D:
        # -44.1% on the Altix at 2 CPUs; more on our model).
        pg2q = run("pg2Q", n_processors=2)
        pgpre = run("pgPre", n_processors=2)
        assert pgpre.contention_per_million < 0.8 * pg2q.contention_per_million

    def test_all_systems_comparable_at_one_cpu(self):
        results = [run(name, n_processors=1).throughput_tps
                   for name in ("pgclock", "pg2Q", "pgBatPre")]
        assert max(results) < 1.1 * min(results)

    def test_contention_grows_with_processors(self):
        contentions = [run("pg2Q", n_processors=p).contention_per_million
                       for p in (2, 4, 8)]
        assert contentions[0] < contentions[1] < contentions[2]


class TestPlatformClaims:
    def test_poweredge_contends_worse_than_altix(self):
        # SIV-D: hardware prefetching accelerates user work, issuing
        # lock requests faster -> more contention at equal CPU count.
        altix = run("pg2Q", n_processors=8, machine=ALTIX_350)
        poweredge = run("pg2Q", n_processors=8, machine=POWEREDGE_2900)
        assert (poweredge.contention_per_million
                > altix.contention_per_million)

    def test_prefetch_less_effective_on_poweredge(self):
        # Out-of-order cores already hide stalls: the software-prefetch
        # contention reduction is smaller on the PowerEdge.
        def reduction(machine):
            pg2q = run("pg2Q", n_processors=2, machine=machine)
            pgpre = run("pgPre", n_processors=2, machine=machine)
            if pg2q.contention_per_million == 0:
                return 0.0
            return 1.0 - (pgpre.contention_per_million
                          / pg2q.contention_per_million)

        assert reduction(ALTIX_350) > reduction(POWEREDGE_2900)


class TestHitRatioClaims:
    def test_wrapping_does_not_hurt_hit_ratio(self):
        # SIV-F: "the hit ratio curves of pg2Q and pgBatPref overlap".
        workload = make_workload("dbt1", seed=3, scale=0.3)
        trace = merged_trace(workload, 40_000)
        capacity = workload.total_pages // 10
        bare = replay("2q", trace, capacity=capacity).hit_ratio
        wrapped = replay_through_wrapper("2q", trace, capacity=capacity,
                                         queue_size=64, batch_threshold=32,
                                         n_threads=8).hit_ratio
        assert wrapped == pytest.approx(bare, abs=0.01)

    def test_2q_beats_clock_at_small_buffers(self):
        workload = make_workload("dbt1", seed=3, scale=0.3)
        trace = merged_trace(workload, 40_000)
        capacity = workload.total_pages // 10
        clock = replay("clock", trace, capacity=capacity).hit_ratio
        twoq = replay("2q", trace, capacity=capacity).hit_ratio
        assert twoq > clock + 0.02

    def test_advanced_policies_work_under_wrapper_in_des(self):
        # The paper swaps LIRS and MQ for 2Q and sees no difference in
        # scalability; verify they run wrapped and stay contention-free.
        for policy in ("lirs", "mq"):
            result = run("pgBatPre", policy_name=policy)
            assert result.contention_per_million < 10_000, policy
            assert result.hit_ratio == pytest.approx(1.0)


class TestStaleEntries:
    def test_wrapped_system_with_misses_drops_stale_entries(self):
        # With evictions happening between enqueue and commit, some
        # queued hits must fail the BufferTag check — and the system
        # keeps running correctly.
        config = ExperimentConfig(
            system="pgBatPre", workload="dbt1",
            workload_kwargs={"scale": 0.3}, machine=POWEREDGE_2900,
            n_processors=8, buffer_pages=300, use_disk=True,
            target_accesses=20_000, seed=11)
        result = run_experiment(config)
        assert result.misses > 0
        assert result.stale_queue_entries > 0
