"""Cross-implementation equivalence properties.

Strong correctness statements connecting independent implementations:
if two different code paths must agree by construction, comparing them
over hypothesis-generated traces catches bugs in either.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bufmgr.manager import BufferManager
from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import (BatchedHandler, DirectHandler, ThreadSlot)
from repro.core.config import BPConfig
from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.policies.clock import ClockPolicy
from repro.policies.gclock import GClockPolicy
from repro.policies.lru import LRUPolicy
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator
from repro.sync.locks import SimLock

traces = st.lists(st.integers(min_value=0, max_value=25),
                  min_size=1, max_size=400)


class TestGClockReducesToClock:
    @settings(max_examples=60, deadline=None)
    @given(traces, st.integers(min_value=1, max_value=8))
    def test_unit_counter_gclock_is_clock(self, trace, capacity):
        """GCLOCK with counters capped at 1 must behave exactly like
        CLOCK: a hit sets the (now binary) counter, the sweep clears it,
        insertion starts it at 1 — the same automaton."""
        clock = ClockPolicy(capacity)
        gclock = GClockPolicy(capacity, initial_count=1, max_count=1)
        for block in trace:
            key = ("s", block)
            clock_result = clock.access(key)
            gclock_result = gclock.access(key)
            assert clock_result.hit == gclock_result.hit
            assert clock_result.evicted == gclock_result.evicted
        assert (set(clock.resident_keys())
                == set(gclock.resident_keys()))


def _run_system(handler_cls, config, trace, capacity):
    """Drive one single-threaded DES run; return the final LRU order."""
    sim = Simulator()
    costs = CostModel(user_work_us=1.0)
    policy = LRUPolicy(capacity)
    lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
    cache = MetadataCacheModel(costs)
    handler = handler_cls(policy, lock, cache, costs, config)
    manager = BufferManager(sim, capacity, policy, handler, costs)
    pool = ProcessorPool(sim, 1, 0.0)
    thread = CpuBoundThread(pool)
    slot = ThreadSlot(thread, 0, queue_size=config.queue_size)
    hits = []

    def body():
        for block in trace:
            hit = yield from manager.access(slot, ("s", block))
            hits.append(hit)
        # Flush any deferred history through a final miss on a page
        # outside the trace's key space (mirrors Fig. 4's miss commit).
        yield from manager.access(slot, ("flush", 10**9))

    thread.start(body())
    sim.run()
    return list(policy.lru_order()), hits


class TestBatchingPreservesAlgorithmState:
    @settings(max_examples=30, deadline=None)
    @given(traces, st.integers(min_value=4, max_value=10),
           st.integers(min_value=1, max_value=8))
    def test_single_threaded_batched_equals_direct(self, trace, capacity,
                                                   batch):
        """With one thread, batching only *defers* hit bookkeeping; the
        paper argues (SIII-A) that "the order in which the batched
        operations are executed does not change", so once the queue is
        flushed the wrapped algorithm's state must equal the unwrapped
        one's — except where an eviction decision fell between enqueue
        and commit.

        To make the equivalence exact we use a capacity larger than the
        key space (no evictions): then deferral is the ONLY difference,
        and the final LRU orders must match exactly.
        """
        key_space = 26
        capacity = key_space + 2  # no evictions possible
        direct_order, direct_hits = _run_system(
            DirectHandler, BPConfig.baseline(), trace, capacity)
        batched_order, batched_hits = _run_system(
            BatchedHandler,
            BPConfig.batching_only(queue_size=batch,
                                   batch_threshold=max(1, batch // 2)),
            trace, capacity)
        assert direct_hits == batched_hits
        assert direct_order == batched_order

    @settings(max_examples=20, deadline=None)
    @given(traces)
    def test_batched_hit_miss_counts_match_direct_with_evictions(
            self, trace):
        """Even with evictions, single-threaded hit/miss *outcomes*
        match: residency is decided at access time (the hash-table
        lookup), not at commit time, so deferring bookkeeping cannot
        change what was a hit."""
        capacity = 8
        _, direct_hits = _run_system(DirectHandler, BPConfig.baseline(),
                                     trace, capacity)
        _, batched_hits = _run_system(
            BatchedHandler,
            BPConfig.batching_only(queue_size=4, batch_threshold=2),
            trace, capacity)
        # Deferral may change *which* page an eviction picks (the
        # paper's accepted, negligible effect), which can flip later
        # hit/miss outcomes — but the first divergence can only happen
        # after the first eviction.
        first_divergence = next(
            (index for index, (a, b) in enumerate(
                zip(direct_hits, batched_hits)) if a != b),
            None)
        if first_divergence is not None:
            assert first_divergence >= capacity
