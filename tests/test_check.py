"""Tests for the correctness subsystem (repro.check).

Three layers: the lock-protocol shadow monitor must catch every class
of protocol violation; policy structural invariants must pass on honest
states and fail on corrupted ones; and the differential oracle must
prove batched/direct equivalence on real runs — while reliably flagging
the deliberately-sabotaged replay (the mutation canary that proves the
oracle has teeth).
"""

from __future__ import annotations

import pytest

from repro.check import (CorrectnessChecker, LockMonitor, differential_check,
                         generate_cases, record_arrivals, run_case,
                         run_fuzzer, shrink_case)
from repro.check.fuzzer import FuzzCase
from repro.errors import CheckError, PolicyError
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.policies.arc import ARCPolicy
from repro.policies.lirs import LIRSPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.twoq import TwoQPolicy


def small_config(**overrides) -> ExperimentConfig:
    """A fast multi-threaded configuration with real evictions."""
    defaults = dict(
        system="pgBat", workload="tablescan",
        workload_kwargs={"n_tables": 4, "pages_per_table": 40},
        n_processors=2, n_threads=4, buffer_pages=96,
        target_accesses=800, warmup_fraction=0.0,
        policy_name="2q", queue_size=8, batch_threshold=4, seed=11)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestLockMonitor:
    def test_clean_protocol_accepted(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        monitor.on_blocked("L", "b", 0)
        monitor.on_released("L", "a", "b")
        monitor.on_granted("L", "b")
        monitor.on_released("L", "b", None)
        monitor.finalize()
        summary = monitor.summary()["L"]
        assert summary["grants"] == 2
        assert summary["releases"] == 2

    def test_grant_while_held(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        with pytest.raises(CheckError, match="still owned"):
            monitor.on_granted("L", "b")

    def test_double_release(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        monitor.on_released("L", "a", None)
        with pytest.raises(CheckError, match="double release"):
            monitor.on_released("L", "a", None)

    def test_release_by_non_owner(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        with pytest.raises(CheckError, match="owned by"):
            monitor.on_released("L", "b", None)

    def test_lost_wakeup_on_release(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        monitor.on_blocked("L", "b", 0)
        with pytest.raises(CheckError, match="lost wakeup"):
            monitor.on_released("L", "a", None)   # woke nobody

    def test_fifo_violation(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        monitor.on_blocked("L", "b", 0)
        monitor.on_blocked("L", "c", 1)
        with pytest.raises(CheckError, match="FIFO head"):
            monitor.on_released("L", "a", "c")    # skipped b

    def test_requeue_must_rotate_to_tail(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        monitor.on_blocked("L", "b", 0)
        monitor.on_blocked("L", "c", 1)
        monitor.on_released("L", "a", "b")        # b woken
        monitor.on_granted("L", "d")              # barger wins
        # b lost the race; a front re-queue (position 0) is the
        # starvation-prone behavior the fix ruled out.
        with pytest.raises(CheckError, match="tail"):
            monitor.on_requeued("L", "b", 0, 2)

    def test_requeue_at_tail_accepted(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        monitor.on_blocked("L", "b", 0)
        monitor.on_blocked("L", "c", 1)
        monitor.on_released("L", "a", "b")
        monitor.on_granted("L", "d")
        monitor.on_requeued("L", "b", 1, 2)       # tail of [c, b]
        assert monitor.summary()["L"]["requeues"] == 1

    def test_spurious_requeue(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        with pytest.raises(CheckError, match="without having been woken"):
            monitor.on_requeued("L", "b", 0, 1)

    def test_finalize_catches_stranded_waiter(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        monitor.on_blocked("L", "b", 0)
        monitor.on_blocked("L", "c", 1)
        monitor.on_released("L", "a", "b")
        monitor.on_granted("L", "b")
        monitor.on_released("L", "b", "c")
        monitor.on_granted("L", "c")
        monitor.on_released("L", "c", None)
        monitor.finalize()                        # clean: all served
        stranded = LockMonitor()
        stranded.on_granted("L", "a")
        stranded.on_blocked("L", "b", 0)
        stranded.shadow("L").owner = None         # fake a lost release
        with pytest.raises(CheckError, match="lost wakeup"):
            stranded.finalize()

    def test_finalize_catches_leaked_ownership(self):
        monitor = LockMonitor()
        monitor.on_granted("L", "a")
        with pytest.raises(CheckError, match="missing release"):
            monitor.finalize()


class TestCheckerFacade:
    def test_commit_without_lock_rejected(self):
        checker = CorrectnessChecker()
        with pytest.raises(CheckError, match="without holding"):
            checker.on_commit("L", "a", holds_lock=False)

    def test_commit_checked_against_shadow_owner(self):
        checker = CorrectnessChecker()
        checker.on_lock_granted("L", "a")
        # The component *claims* b holds the lock, but the monitor's
        # shadow says a does: the independent state wins.
        with pytest.raises(CheckError, match="commit by"):
            checker.on_commit("L", "b", holds_lock=True)

    def test_policy_commit_runs_invariants(self):
        checker = CorrectnessChecker()
        policy = TwoQPolicy(8)
        for block in range(12):
            policy.access(("t", block))
        checker.on_policy_commit(policy)
        assert checker.invariant_checks == 1

    def test_disabled_layers_are_inert(self):
        checker = CorrectnessChecker(check_locks=False,
                                     check_policies=False,
                                     record_arrivals=False)
        checker.on_lock_granted("L", "a")
        checker.on_lock_granted("L", "b")   # would raise with monitor
        checker.on_access(0, ("t", 1), False)
        assert checker.arrivals is None
        checker.finalize()


class TestPolicyInvariants:
    def test_honest_states_pass(self):
        for policy in (LRUPolicy(8), TwoQPolicy(8), LIRSPolicy(8),
                       ARCPolicy(8)):
            for block in range(30):
                policy.access(("t", block % 12))
            policy.check_invariants()

    def test_twoq_overlap_detected(self):
        policy = TwoQPolicy(8)
        for block in range(4):
            policy.access(("t", block))
        resident = next(iter(policy.resident_keys()))
        policy._am[resident] = None        # now in A1in AND Am
        # The generic layer already flags this as a duplicate resident
        # key; either detection is acceptable.
        with pytest.raises(PolicyError):
            policy.check_invariants()

    def test_twoq_resident_ghost_detected(self):
        policy = TwoQPolicy(8)
        for block in range(4):
            policy.access(("t", block))
        resident = next(iter(policy.resident_keys()))
        policy._a1out[resident] = None     # ghost of a resident page
        with pytest.raises(PolicyError, match="still resident"):
            policy.check_invariants()

    def test_twoq_ghost_bound_detected(self):
        policy = TwoQPolicy(8)
        for block in range(40):
            policy.access(("t", block))
        for block in range(1000, 1000 + policy.kout + 1):
            policy._a1out[("t", block)] = None
        with pytest.raises(PolicyError, match="kout"):
            policy.check_invariants()

    def test_lirs_counter_drift_detected(self):
        policy = LIRSPolicy(8)
        for block in range(30):
            policy.access(("t", block % 12))
        policy._ghost_count += 1
        with pytest.raises(PolicyError, match="ghost"):
            policy.check_invariants()

    def test_arc_p_out_of_range_detected(self):
        policy = ARCPolicy(8)
        for block in range(20):
            policy.access(("t", block % 10))
        policy._p = policy.capacity + 5.0
        with pytest.raises(PolicyError, match="outside"):
            policy.check_invariants()

    def test_arc_list_overlap_detected(self):
        policy = ARCPolicy(8)
        for block in range(20):
            policy.access(("t", block % 10))
        resident = next(iter(policy.resident_keys()))
        policy._b1[resident] = None
        with pytest.raises(PolicyError, match="overlap"):
            policy.check_invariants()


class TestCheckedExperiment:
    def test_checked_run_is_clean_and_records(self):
        checker = CorrectnessChecker()
        result = run_experiment(small_config(), checker=checker)
        # The run drained, so the quiescence sweep ran inside
        # run_experiment without raising.
        assert checker.finalized
        assert checker.commit_checks > 0
        assert checker.invariant_checks > 0
        # Arrival recording captured the global access order: one
        # record per page access the buffer manager served.
        assert len(checker.arrivals) == result.total_accesses
        assert result.misses > 0           # evictions were exercised

    def test_checker_does_not_alter_measurements(self):
        plain = run_experiment(small_config())
        checked = run_experiment(small_config(),
                                 checker=CorrectnessChecker())
        assert checked.throughput_tps == pytest.approx(
            plain.throughput_tps)
        assert checked.elapsed_us == pytest.approx(plain.elapsed_us)
        assert checked.hits == plain.hits


class TestDifferentialOracle:
    @pytest.mark.parametrize("policy", ["2q", "lru"])
    @pytest.mark.parametrize("seed", [11, 17, 23])
    def test_batched_equivalent_to_direct(self, policy, seed):
        config = small_config(policy_name=policy, seed=seed)
        verdict = differential_check(config, baseline="pg2Q",
                                     candidate="pgBat")
        assert verdict.equivalent, verdict.detail
        assert verdict.n_evictions > 0     # the claim is non-vacuous

    def test_batpre_equivalent_too(self):
        verdict = differential_check(small_config(), baseline="pg2Q",
                                     candidate="pgBatPre")
        assert verdict.equivalent, verdict.detail

    def test_degenerate_threshold_equivalent(self):
        config = small_config(queue_size=8, batch_threshold=8)
        verdict = differential_check(config)
        assert verdict.equivalent, verdict.detail

    def test_inject_reorder_canary_trips(self):
        # The mutation canary: reversing each batch at drain time must
        # be caught, proving the oracle can actually fail. LRU makes
        # the divergence certain once multi-entry batches exist —
        # which needs threads *sharing* tables (8 threads over 4
        # tables), since a lone scanner of a thrashing LRU never hits.
        config = small_config(policy_name="lru", n_threads=8,
                              n_processors=4)
        verdict = differential_check(config, inject_reorder=True)
        assert not verdict.equivalent
        assert verdict.n_evictions > 0

    def test_arrivals_reusable_across_candidates(self):
        config = small_config()
        arrivals = record_arrivals(config)
        a = differential_check(config, candidate="pgBat",
                               arrivals=arrivals)
        b = differential_check(config, candidate="pgBatPre",
                               arrivals=arrivals)
        assert a.equivalent and b.equivalent
        assert a.n_arrivals == b.n_arrivals == len(arrivals)


class TestFuzzer:
    def test_case_generation_deterministic(self):
        assert generate_cases(7, 8) == generate_cases(7, 8)
        assert generate_cases(7, 8) != generate_cases(8, 8)

    def test_corners_always_covered(self):
        cases = generate_cases(0, 8)
        assert any(c.queue_size == c.batch_threshold > 1 for c in cases)
        assert any(c.queue_size == 1 for c in cases)

    def test_clean_cases_pass(self):
        for case in generate_cases(3, 2):
            assert run_case(case) is None

    def test_verdicts_deterministic(self):
        first = run_fuzzer(5, 2, shrink=False)
        second = run_fuzzer(5, 2, shrink=False)
        assert [o.passed for o in first.outcomes] == \
               [o.passed for o in second.outcomes]
        assert first.ok and second.ok

    def test_injected_failure_found_and_shrunk(self):
        case = FuzzCase(seed=1, system="pgBat", policy="lru",
                        n_processors=4, n_threads=8, queue_size=8,
                        batch_threshold=4, buffer_pages=96,
                        target_accesses=800, inject_reorder=True)
        error = run_case(case)
        assert error is not None and "divergence" in error
        shrunk = shrink_case(case, error)
        assert run_case(shrunk) is not None
        assert (shrunk.target_accesses, shrunk.n_threads) <= \
               (case.target_accesses, case.n_threads)
