"""Tests for the simulated lock (Mesa semantics, TryLock, statistics)."""

from __future__ import annotations

import pytest

from repro.errors import LockError
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator
from repro.sync.locks import SimLock
from repro.sync.stats import LockStats


def setup(sim, n_cpus=4, ctx=0.0, grant=0.0):
    pool = ProcessorPool(sim, n_cpus, context_switch_us=ctx)
    lock = SimLock(sim, grant_cost_us=grant, try_cost_us=0.0)
    return pool, lock


class TestUncontended:
    def test_acquire_release(self, sim):
        pool, lock = setup(sim)
        thread = CpuBoundThread(pool)

        def body():
            yield from lock.acquire(thread)
            assert lock.held
            assert lock.owner is thread
            yield from thread.run_for(2.0)
            lock.release(thread)
            assert not lock.held

        thread.start(body())
        sim.run()
        assert lock.stats.contentions == 0
        assert lock.stats.acquisitions == 1
        assert lock.stats.total_hold_us == pytest.approx(2.0)

    def test_reacquire_while_owner_raises(self, sim):
        pool, lock = setup(sim)
        thread = CpuBoundThread(pool)

        def body():
            yield from lock.acquire(thread)
            yield from lock.acquire(thread)

        thread.start(body())
        with pytest.raises(LockError):
            sim.run()

    def test_release_by_non_owner_raises(self, sim):
        pool, lock = setup(sim)
        a = CpuBoundThread(pool, "a")
        b = CpuBoundThread(pool, "b")

        def owner_body():
            yield from lock.acquire(a)
            yield from a.run_for(100.0)

        def rogue_body():
            yield from b.run_for(1.0)
            lock.release(b)

        a.start(owner_body())
        b.start(rogue_body())
        with pytest.raises(LockError):
            sim.run()

    def test_pending_charge_spent_before_grant(self, sim):
        # Lock state must be observed at true logical time: work charged
        # before acquire may not land inside the holding window.
        pool, lock = setup(sim)
        thread = CpuBoundThread(pool)

        def body():
            thread.charge(50.0)
            yield from lock.acquire(thread)
            lock.release(thread)

        thread.start(body())
        sim.run()
        assert lock.stats.total_hold_us == pytest.approx(0.0)
        assert sim.now == pytest.approx(50.0)


class TestTryLock:
    def test_try_on_free_lock_succeeds(self, sim):
        pool, lock = setup(sim)
        thread = CpuBoundThread(pool)
        outcomes = []

        def body():
            outcomes.append(lock.try_acquire(thread))
            lock.release(thread)
            yield from thread.spend()

        thread.start(body())
        sim.run()
        assert outcomes == [True]
        assert lock.stats.try_attempts == 1
        assert lock.stats.try_failures == 0

    def test_try_on_held_lock_fails_without_blocking(self, sim):
        pool, lock = setup(sim)
        a = CpuBoundThread(pool, "a")
        b = CpuBoundThread(pool, "b")
        outcomes = []

        def holder():
            yield from lock.acquire(a)
            yield from a.run_for(10.0)
            lock.release(a)

        def trier():
            yield from b.run_for(1.0)
            outcomes.append((lock.try_acquire(b), sim.now))
            yield from b.run_for(1.0)

        a.start(holder())
        b.start(trier())
        sim.run()
        assert outcomes == [(False, 1.0)]
        assert lock.stats.try_failures == 1
        assert lock.stats.contentions == 0

    def test_try_success_counts_as_request(self, sim):
        # Regression: a successful TryLock is a satisfied lock request
        # and must count in stats.requests, like a blocking Lock()
        # does. (It used to count only the acquisition, leaving
        # requests < acquisitions and inflating per-request ratios for
        # batched systems, whose grants are almost all try successes.)
        pool, lock = setup(sim)
        thread = CpuBoundThread(pool)

        def body():
            assert lock.try_acquire(thread)
            lock.release(thread)
            yield from lock.acquire(thread)
            lock.release(thread)
            yield from thread.spend()

        thread.start(body())
        sim.run()
        assert lock.stats.requests == 2
        assert lock.stats.acquisitions == 2
        # A *failed* try is not a request: nothing was satisfied and
        # nothing blocked (covered by the asymmetry test below).

    def test_failed_try_is_not_a_request(self, sim):
        pool, lock = setup(sim)
        a = CpuBoundThread(pool, "a")
        b = CpuBoundThread(pool, "b")

        def holder():
            yield from lock.acquire(a)
            yield from a.run_for(10.0)
            lock.release(a)

        def trier():
            yield from b.run_for(1.0)
            assert not lock.try_acquire(b)
            yield from b.run_for(1.0)

        a.start(holder())
        b.start(trier())
        sim.run()
        assert lock.stats.requests == 1        # the holder's only
        assert lock.stats.try_attempts == 1
        assert lock.stats.try_failures == 1


class TestContention:
    def test_blocked_request_counts_once(self, sim):
        pool, lock = setup(sim)
        a = CpuBoundThread(pool, "a")
        b = CpuBoundThread(pool, "b")
        log = []

        def holder():
            yield from lock.acquire(a)
            yield from a.run_for(10.0)
            lock.release(a)

        def waiter():
            yield from b.run_for(1.0)
            yield from lock.acquire(b)
            log.append(sim.now)
            lock.release(b)

        a.start(holder())
        b.start(waiter())
        sim.run()
        assert lock.stats.contentions == 1
        assert log and log[0] >= 10.0
        assert lock.stats.total_wait_us == pytest.approx(log[0] - 1.0)

    def test_fifo_wakeup_order(self, sim):
        pool, lock = setup(sim, n_cpus=8)
        order = []

        def holder(thread):
            yield from lock.acquire(thread)
            yield from thread.run_for(10.0)
            lock.release(thread)

        def waiter(thread, tag, delay):
            yield from thread.run_for(delay)
            yield from lock.acquire(thread)
            order.append(tag)
            lock.release(thread)

        h = CpuBoundThread(pool, "h")
        h.start(holder(h))
        for tag, delay in [("first", 1.0), ("second", 2.0),
                           ("third", 3.0)]:
            thread = CpuBoundThread(pool, tag)
            thread.start(waiter(thread, tag, delay))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_mesa_barging_is_possible(self, sim):
        # A running thread may grab a just-freed lock before the woken
        # waiter is re-dispatched (context switches make waking slow).
        pool, lock = setup(sim, n_cpus=2, ctx=5.0)
        order = []

        def holder(thread):
            yield from lock.acquire(thread)
            yield from thread.run_for(10.0)
            lock.release(thread)
            # Immediately try again: the waiter needs 5us to wake, so
            # this barging acquire wins.
            yield from lock.acquire(thread)
            order.append("barger")
            yield from thread.run_for(1.0)
            lock.release(thread)

        def waiter(thread):
            yield from thread.run_for(1.0)
            yield from lock.acquire(thread)
            order.append("waiter")
            lock.release(thread)

        h = CpuBoundThread(pool, "h")
        w = CpuBoundThread(pool, "w")
        h.start(holder(h))
        w.start(waiter(w))
        sim.run()
        assert order == ["barger", "waiter"]
        # The waiter blocked once despite retrying.
        assert lock.stats.contentions == 1

    def test_barging_loser_requeues_at_tail(self, sim):
        # Regression for the wake-up rotation documented in SimLock:
        # a woken waiter that loses the barging race re-queues at the
        # TAIL (as PostgreSQL's LWLockAcquire does), so the next
        # release wakes the *other* waiter — attempts rotate instead of
        # one unlucky thread pinning the head slot.
        from repro.check import CorrectnessChecker
        checker = CorrectnessChecker()
        sim.checker = checker
        pool, lock = setup(sim, n_cpus=4, ctx=5.0)
        order = []

        def holder(thread):
            yield from lock.acquire(thread)
            yield from thread.run_for(10.0)
            lock.release(thread)

        def waiter(thread, tag, delay):
            yield from thread.run_for(delay)
            yield from lock.acquire(thread)
            order.append(tag)
            yield from thread.run_for(1.0)
            lock.release(thread)

        def barger(thread):
            # Arrives just after the release wakes waiter "a" (whose
            # re-dispatch takes a 5us context switch) and steals the
            # lock, forcing "a" to re-queue behind "b".
            yield from thread.run_for(10.5)
            yield from lock.acquire(thread)
            order.append("barger")
            yield from thread.run_for(20.0)
            lock.release(thread)

        h = CpuBoundThread(pool, "h")
        a = CpuBoundThread(pool, "a")
        b = CpuBoundThread(pool, "b")
        c = CpuBoundThread(pool, "c")
        h.start(holder(h))
        a.start(waiter(a, "a", 1.0))
        b.start(waiter(b, "b", 2.0))
        c.start(barger(c))
        sim.run()
        # "a" blocked first but lost the barging race; rotation means
        # "b" (already queued) is served before "a" retries.
        assert order == ["barger", "b", "a"]
        # The shadow monitor validated every transition online; the
        # quiescent end state must also be clean, with exactly one
        # tail re-queue observed.
        checker.finalize()
        assert checker.lock_monitor.summary()["lock"]["requeues"] == 1

    def test_no_lost_wakeup(self, sim):
        # Hammer the lock from many threads; everyone must finish.
        pool, lock = setup(sim, n_cpus=2, ctx=1.0)
        finished = []

        def body(thread, tag):
            for _ in range(20):
                yield from thread.run_for(1.0)
                yield from lock.acquire(thread)
                yield from thread.run_for(0.5)
                lock.release(thread)
            finished.append(tag)

        for tag in range(6):
            thread = CpuBoundThread(pool, f"t{tag}")
            thread.start(body(thread, tag))
        sim.run()
        assert sorted(finished) == list(range(6))
        assert not lock.held
        assert lock.queue_length == 0


class TestLockStats:
    def test_contentions_per_million(self):
        stats = LockStats(contentions=5)
        assert stats.contentions_per_million(1000) == 5000.0
        assert stats.contentions_per_million(0) == 0.0

    def test_lock_time_per_access(self):
        stats = LockStats(total_wait_us=30.0, total_hold_us=70.0)
        assert stats.lock_time_per_access_us(100) == pytest.approx(1.0)

    def test_copy_and_delta(self):
        stats = LockStats(requests=10, contentions=3, acquisitions=10,
                          total_wait_us=5.0, total_hold_us=9.0)
        snapshot = stats.copy()
        stats.requests += 5
        stats.contentions += 1
        stats.total_hold_us += 2.0
        delta = stats.delta_since(snapshot)
        assert delta.requests == 5
        assert delta.contentions == 1
        assert delta.total_hold_us == pytest.approx(2.0)
        assert snapshot.requests == 10  # snapshot unaffected

    def test_merged_with(self):
        a = LockStats(requests=1, contentions=2, max_hold_us=5.0)
        b = LockStats(requests=3, contentions=4, max_hold_us=7.0)
        merged = a.merged_with(b)
        assert merged.requests == 4
        assert merged.contentions == 6
        assert merged.max_hold_us == 7.0

    def test_mean_helpers_guard_zero(self):
        stats = LockStats()
        assert stats.mean_hold_us() == 0.0
        assert stats.mean_wait_us() == 0.0

    def test_contention_rate(self):
        stats = LockStats(requests=10, contentions=3)
        assert stats.contention_rate == pytest.approx(0.3)

    def test_contention_rate_guards_zero(self):
        assert LockStats().contention_rate == 0.0


class TestRequestAccounting:
    """Every grant corresponds to exactly one counted request, whether
    it arrived through a blocking ``Lock()`` or a successful
    ``TryLock`` — so ``contention_rate`` means the same thing for
    direct systems (all blocking) and batched systems (mostly try
    successes)."""

    def _run_pattern(self, sim, use_try):
        pool, lock = setup(sim, n_cpus=2, ctx=0.0)
        a = CpuBoundThread(pool, "a")
        b = CpuBoundThread(pool, "b")

        def worker(thread, delay):
            yield from thread.run_for(delay)
            for _ in range(10):
                if use_try and lock.try_acquire(thread):
                    pass  # the batched fast path (Fig. 4 line 8)
                else:
                    yield from lock.acquire(thread)
                yield from thread.run_for(1.0)
                lock.release(thread)
                yield from thread.run_for(1.0)

        a.start(worker(a, 0.0))
        b.start(worker(b, 0.5))
        sim.run()
        return lock.stats

    def test_direct_and_batched_patterns_agree(self, sim):
        direct = self._run_pattern(sim, use_try=False)
        from repro.simcore.engine import Simulator
        batched = self._run_pattern(Simulator(), use_try=True)
        for stats in (direct, batched):
            # The invariant the bug broke: grants == counted requests.
            assert stats.acquisitions == stats.requests == 20
            assert stats.contention_rate == pytest.approx(
                stats.contentions / stats.requests)
            assert 0.0 <= stats.contention_rate <= 1.0
