"""Serving-layer telemetry: traces, sampled series, SLOs, CLI exports.

The end-to-end contracts of the telemetry pipeline:

* a disk-backed serve run's trace links admission, shard, lock-wait
  and disk spans under one deterministic request id;
* the windowed sampler opt-in (``telemetry_interval_us``) produces a
  byte-stable document and changes nothing else about the run;
* the published ``serve.shard*`` / ``serve.tenant.*`` / ``serve.slo.*``
  metric families reconcile exactly with :meth:`ServeResult.to_dict`;
* ``cli serve --telemetry`` writes byte-deterministic OpenMetrics and
  time-series artifacts plus the telemetry dashboard.
"""

from __future__ import annotations

import collections
import json

import pytest

from repro.harness.dashboard import render_telemetry_page
from repro.obs import MetricsRegistry, Observer, TraceRecorder
from repro.serve import ServeConfig, run_serve


def tiny_config(**overrides) -> ServeConfig:
    base = dict(n_shards=2, n_tenants=3, sessions_per_tenant=2,
                pages_per_tenant=48, hot_pages=8, target_requests=300,
                n_processors=4, seed=13)
    base.update(overrides)
    return ServeConfig(**base)


# -- request-scoped trace propagation --------------------------------------


def test_request_trace_links_admission_to_disk():
    """One request id must connect the whole causal chain: the request
    span, the replacement-lock wait, the page miss, and the disk read
    it triggered — the acceptance criterion of the tracing layer."""
    observer = Observer(trace=TraceRecorder(), metrics=MetricsRegistry())
    config = tiny_config(use_disk=True, shard_buffer_pages=24,
                         target_requests=200)
    run_serve(config, observer=observer)
    names_by_request = collections.defaultdict(set)
    for ph, name, cat, tid, ts, dur, args in observer.trace.records():
        request_id = (args or {}).get("req")
        if request_id:
            names_by_request[request_id].add(name)
    assert names_by_request, "no trace records carried a request id"
    linked = [
        request_id for request_id, names in names_by_request.items()
        if "request" in names
        and any(name.startswith("wait:") for name in names)
        and "disk-read" in names
    ]
    assert linked, (
        f"no request linked request+lock-wait+disk spans; saw "
        f"{sorted(set().union(*names_by_request.values()))}")


def test_trace_ids_are_deterministic_across_runs():
    def collect():
        observer = Observer(trace=TraceRecorder(),
                            metrics=MetricsRegistry())
        run_serve(tiny_config(target_requests=120), observer=observer)
        return sorted({(args or {}).get("req")
                       for *_, args in observer.trace.records()
                       if (args or {}).get("req")})

    first = collect()
    assert first == collect()


def test_unobserved_run_is_unchanged_by_the_tracing_layer():
    """No observer, no telemetry: the run's record must be identical
    to the pre-telemetry contract (byte-stable same-seed JSON)."""
    config = tiny_config()
    a = json.dumps(run_serve(config).to_dict(), sort_keys=True)
    b = json.dumps(run_serve(config).to_dict(), sort_keys=True)
    assert a == b


# -- windowed telemetry ----------------------------------------------------


def test_sampler_collects_series_and_latency_windows():
    config = tiny_config(telemetry_interval_us=2_000.0)
    result = run_serve(config)
    telemetry = result.telemetry
    assert telemetry is not None
    assert telemetry["samples"] >= 1
    series = telemetry["series"]
    for shard_id in range(config.n_shards):
        assert f"shard{shard_id}.queue_depth" in series
        assert f"shard{shard_id}.contention_rate" in series
        assert f"shard{shard_id}.hit_ratio" in series
    assert "served.requests" in series
    # Every tenant that completed requests has latency windows, and
    # the windowed counts sum to its completed-request count.
    tenants = {t["tenant"]: t for t in result.tenant_records}
    for name, windowed in telemetry["latency_windows"].items():
        count = sum(w["count"] for w in windowed["windows"])
        assert count == tenants[name]["completed"]


def test_sampler_document_is_deterministic():
    config = tiny_config(telemetry_interval_us=2_000.0)
    a = json.dumps(run_serve(config).telemetry, sort_keys=True)
    b = json.dumps(run_serve(config).telemetry, sort_keys=True)
    assert a == b


def test_sampling_preserves_accounting_invariants():
    """The sampler is one more scheduled thread, so it may shift the
    interleaving (deterministically — see the determinism test above);
    what it must never do is break conservation: every admitted
    request completes, shard accesses sum to the total, and the run
    still hits its target."""
    result = run_serve(tiny_config(telemetry_interval_us=2_000.0))
    record = result.to_dict()
    assert record["requests"] >= result.config.target_requests
    assert sum(s["accesses"] for s in record["shards"]) == \
        record["accesses"]
    assert sum(t["completed"] for t in record["tenants"]) == \
        record["requests"]


def test_native_runtime_samples_wall_clock_telemetry():
    config = tiny_config(runtime="native", target_requests=150,
                         n_processors=2,
                         telemetry_interval_us=1_000.0)
    result = run_serve(config)
    assert result.telemetry is not None
    assert result.telemetry["samples"] >= 1


# -- SLO records -----------------------------------------------------------


def test_slo_records_cover_every_tenant():
    result = run_serve(tiny_config())
    assert len(result.slo_records) == result.config.n_tenants
    names = [record["tenant"] for record in result.slo_records]
    assert names == sorted(names)
    assert result.slo_ok == all(r["ok"] for r in result.slo_records)
    assert result.to_dict()["slo"] == result.slo_records
    assert result.to_dict()["slo_ok"] == result.slo_ok


def test_tight_slo_is_honestly_violated():
    result = run_serve(tiny_config(slo_p99_ms=0.0001))
    assert not result.slo_ok
    assert result.worst_latency_burn > 1.0
    assert "VIOLATED" in result.summary()


# -- metric families reconcile with the result record ----------------------


def test_published_metrics_match_result_records():
    observer = Observer(metrics=MetricsRegistry())
    result = run_serve(tiny_config(), observer=observer)
    snapshot = result.metrics
    record = result.to_dict()
    for shard in record["shards"]:
        prefix = f'serve.shard{shard["shard"]}'
        assert snapshot["counters"][f"{prefix}.accesses"] == \
            shard["accesses"]
        assert snapshot["counters"][f"{prefix}.hits"] == shard["hits"]
        assert snapshot["counters"][f"{prefix}.lock_contentions"] == \
            shard["lock_contentions"]
        assert snapshot["counters"][f"{prefix}.backpressure_events"] \
            == shard["backpressure_events"]
        assert snapshot["gauges"][f"{prefix}.peak_in_flight"]["value"] \
            == shard["peak_in_flight"]
        assert snapshot["gauges"][f"{prefix}.contention_rate"]["value"] \
            == pytest.approx(shard["contention_rate"])
    for tenant in record["tenants"]:
        prefix = f'serve.tenant.{tenant["tenant"]}'
        assert snapshot["counters"][f"{prefix}.admitted"] == \
            tenant["admitted"]
        assert snapshot["counters"][f"{prefix}.throttled"] == \
            tenant["throttled"]
        assert snapshot["counters"][f"{prefix}.backpressured"] == \
            tenant["backpressured"]
        latency = snapshot["histograms"][f"{prefix}.latency_us"]
        assert latency["count"] == tenant["completed"]
    for slo in record["slo"]:
        prefix = f'serve.slo.{slo["tenant"]}'
        assert snapshot["gauges"][f"{prefix}.ok"]["value"] == \
            (1.0 if slo["ok"] else 0.0)
        assert snapshot["gauges"][f"{prefix}.latency_burn_rate"]["value"] \
            == pytest.approx(slo["latency_burn_rate"])


def test_tenant_shard_routing_matrix_conserves_requests():
    result = run_serve(tiny_config())
    for tenant in result.tenant_records:
        routed = sum(tenant["shard_requests"].values())
        assert routed == tenant["admitted"]
        for shard_key in tenant["shard_requests"]:
            assert 0 <= int(shard_key) < result.config.n_shards


# -- config gates ----------------------------------------------------------


def test_bad_telemetry_and_slo_configs_are_rejected():
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        ServeConfig(telemetry_interval_us=-1.0).validate()
    with pytest.raises(ConfigError, match="bad SLO spec"):
        ServeConfig(slo_p99_ms=0.0).validate()
    with pytest.raises(ConfigError, match="use_disk"):
        ServeConfig(use_disk=True, runtime="native").validate()


# -- dashboard and CLI artifacts -------------------------------------------


def test_render_telemetry_page_is_deterministic():
    from repro.serve import serve_grid

    results = []
    record = serve_grid(
        tiny_config(telemetry_interval_us=2_000.0), [2], [3], [0.8],
        observer_factory=lambda: Observer(metrics=MetricsRegistry()),
        progress=results.append)
    timeseries = {"2s-3t-skew0.8": results[0].telemetry}
    page = render_telemetry_page(record, timeseries)
    assert page == render_telemetry_page(record, timeseries)
    assert "sparkline" in page
    assert "SLO" in page
    assert "requests routed" in page  # the tenant x shard heatmap


def test_cli_serve_writes_telemetry_artifacts(tmp_path):
    from repro.harness.cli import serve_main

    out = tmp_path / "out"
    prom = tmp_path / "telemetry.prom"
    argv = ["--shards", "2", "--tenants", "3", "--skews", "0.8",
            "--requests", "150", "--sessions", "2", "--pages", "48",
            "--seed", "13", "--telemetry", str(prom),
            "--trace", "--out", str(out)]
    assert serve_main(argv) == 0
    text = prom.read_text()
    assert text.endswith("# EOF\n")
    assert "repro_serve_shard0_accesses_total" in text
    timeseries = json.loads((out / "timeseries.json").read_text())
    assert timeseries["2s-3t-skew0.8"]["samples"] >= 1
    assert (out / "telemetry_dashboard.html").exists()
    trace = json.loads((out / "trace.json").read_text())
    assert any((e.get("args") or {}).get("req")
               for e in trace["traceEvents"])

    # Same seed, fresh invocation: byte-identical telemetry exports.
    out2 = tmp_path / "out2"
    prom2 = tmp_path / "telemetry2.prom"
    argv2 = list(argv)
    argv2[argv2.index(str(prom))] = str(prom2)
    argv2[argv2.index(str(out))] = str(out2)
    assert serve_main(argv2) == 0
    assert prom2.read_bytes() == prom.read_bytes()
    assert ((out2 / "timeseries.json").read_bytes()
            == (out / "timeseries.json").read_bytes())


def test_cli_serve_telemetry_conflicts_with_no_metrics(capsys):
    from repro.harness.cli import serve_main

    assert serve_main(["--telemetry", "x.prom", "--no-metrics"]) == 2
    assert "--no-metrics" in capsys.readouterr().err
