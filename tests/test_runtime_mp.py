"""The ``mp`` backend: correctness of the shared-memory process runs.

Wall-clock *numbers* from :mod:`repro.runtime.mp` are host-dependent
by design, so these tests assert what is invariant on any machine:
conservation laws (hits + misses = accesses), the per-system lock
disciplines (pg2Q locks every hit, pgBat locks once per batch,
pgclock never locks a hit), configuration rejections, and the record
round-trip. Worker counts stay at 1-2 so the suite is container-sized.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.harness.experiment import (ExperimentConfig, RunResult,
                                      run_experiment)


def _run(system: str, workers: int = 2, **overrides) -> RunResult:
    params = dict(system=system, workload="tablescan", runtime="mp",
                  n_processors=workers, target_accesses=8_000,
                  warmup_fraction=0.0, seed=23,
                  max_sim_time_us=120_000_000.0)
    params.update(overrides)
    return run_experiment(ExperimentConfig(**params))


def test_prewarmed_run_is_miss_free_and_conserves_counts():
    result = _run("pgBat")
    assert result.misses == 0
    assert result.hit_ratio == 1.0
    assert result.hits == result.accesses
    assert result.accesses >= 8_000 - 2  # per-worker integer quotas
    assert result.transactions > 0
    assert result.throughput_tps > 0
    assert result.elapsed_us > 0


def test_pg2q_locks_every_hit():
    result = _run("pg2Q")
    stats = result.lock_stats
    # One blocking request per access (hit or miss), no TryLock at all.
    assert stats.requests == result.accesses
    assert stats.acquisitions == stats.requests
    assert stats.try_attempts == 0
    assert stats.total_hold_us > 0


def test_pgbat_amortizes_the_lock():
    result = _run("pgBat", queue_size=64, batch_threshold=32)
    stats = result.lock_stats
    # Batching: at most one acquisition per threshold-sized batch
    # (plus the final flush per worker), never one per access.
    assert 0 < stats.acquisitions <= result.accesses // 32 + 4
    assert stats.try_attempts > 0
    assert result.mean_batch_size >= 32 * 0.9
    assert result.stale_queue_entries == 0  # miss-free: nothing staled


def test_pgclock_hits_are_lock_free():
    result = _run("pgclock")
    assert result.misses == 0
    assert result.lock_stats.requests == 0
    assert result.lock_stats.try_attempts == 0
    assert result.contention_per_million == 0.0


@pytest.mark.parametrize("system", ["pgBat", "pgclock"])
def test_eviction_path_conserves_counts(system):
    result = _run(system, workload="dbt2", buffer_pages=250,
                  target_accesses=6_000, seed=31)
    assert result.misses > 0
    assert result.hits + result.misses == result.accesses
    assert 0.0 < result.hit_ratio < 1.0
    # Every miss took the replacement lock.
    assert result.lock_stats.acquisitions >= result.misses


def test_single_worker_runs():
    result = _run("pgBatPre", workers=1)
    assert result.accesses >= 8_000
    assert result.lock_stats.contentions == 0  # nobody to contend with
    assert result.cpu_utilization > 0


def test_record_round_trip_preserves_runtime():
    result = _run("pgBat", target_accesses=2_000)
    record = result.to_dict()
    assert record["runtime"] == "mp"
    rebuilt = RunResult.from_dict(record)
    assert rebuilt.to_dict() == record


@pytest.mark.parametrize("overrides, match", [
    (dict(use_disk=True), "in-memory scaling engine"),
    (dict(use_disk=True, background_writer=True),
     "in-memory scaling engine"),
    (dict(system="pgPre"), "no mp hot path"),
    (dict(system="pgLock"), "no mp hot path"),
    (dict(simulate_bucket_locks=True), "simulator ablation"),
    (dict(policy_name="lirs"), "policy_name cannot be swapped"),
    (dict(n_processors=0), ">= 1 worker"),
])
def test_unsupported_configs_are_rejected(overrides, match):
    params = dict(system="pgBat", workload="tablescan", runtime="mp",
                  n_processors=2, target_accesses=1_000)
    params.update(overrides)
    with pytest.raises(ConfigError, match=match):
        run_experiment(ExperimentConfig(**params))


def test_observer_and_checker_are_rejected():
    config = ExperimentConfig(system="pgBat", runtime="mp",
                              n_processors=1, target_accesses=1_000)
    with pytest.raises(ConfigError, match="observability layer"):
        run_experiment(config, observer=object())
    with pytest.raises(ConfigError, match="correctness checker"):
        run_experiment(config, checker=object())


def test_trace_bearing_observer_is_rejected():
    from repro.obs import MetricsRegistry, Observer, TraceRecorder

    config = ExperimentConfig(system="pgBat", runtime="mp",
                              n_processors=1, target_accesses=1_000)
    observer = Observer(trace=TraceRecorder(), metrics=MetricsRegistry())
    with pytest.raises(ConfigError, match="metrics-only"):
        run_experiment(config, observer=observer)


def test_metrics_only_observer_merges_worker_snapshots():
    """Cross-process aggregation: the merged per-worker registries
    must account for every access of the run — the histogram counts
    sum to the global access count, worker by worker."""
    from repro.obs import MetricsRegistry, Observer

    observer = Observer(metrics=MetricsRegistry())
    config = ExperimentConfig(
        system="pgBat", workload="tablescan", runtime="mp",
        n_processors=2, target_accesses=4_000, warmup_fraction=0.0,
        seed=23, max_sim_time_us=120_000_000.0)
    result = run_experiment(config, observer=observer)
    snapshot = result.metrics
    assert snapshot is not None
    assert snapshot["counters"]["mp.workers"] == 2
    assert snapshot["counters"]["mp.transactions"] == result.transactions
    access_hist = snapshot["histograms"]["mp.access_us"]
    assert access_hist["count"] == result.accesses
    assert sum(access_hist["buckets"].values()) == result.accesses
    # The live registry holds the same merged state as the record.
    assert observer.metrics.snapshot() == snapshot


def test_scaling_record_and_page_shape(tmp_path):
    """bench_scaling's record drives the dashboard page deterministically."""
    import json
    import subprocess
    import sys
    import pathlib

    repo = pathlib.Path(__file__).resolve().parent.parent
    out = tmp_path / "out"
    proc = subprocess.run(
        [sys.executable, str(repo / "benchmarks" / "bench_scaling.py"),
         "--workers", "1", "--systems", "pgBat", "--accesses", "2000",
         "--out", str(out), "--baseline", str(tmp_path / "traj.json")],
        capture_output=True, text=True, timeout=300,
        env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    record = json.loads((out / "BENCH_scaling.json").read_text())
    assert record["cells"][0]["system"] == "pgBat"
    assert record["cells"][0]["events_per_sec"] > 0
    html = (out / "scaling.html").read_text()
    assert "Access rate scaling" in html and "<svg" in html
    trajectory = json.loads((tmp_path / "traj.json").read_text())
    entry = trajectory["history"][-1]["metrics"]
    assert "wall.scaling.pgBat.1w" in entry

    from repro.harness.dashboard import render_scaling_page
    assert render_scaling_page(record) == render_scaling_page(record)


def test_wall_scaling_tolerance_class():
    """wall.scaling.* metrics gate at 25% by default, wall.* at 15%."""
    from repro.obs.baseline import compare_baseline, default_tolerance

    assert default_tolerance("wall.scaling.pgBat.2w", "wall") == 0.25
    assert default_tolerance("wall.engine_events_per_sec", "wall") == 0.15
    assert default_tolerance("sim.pg2Q.tps", "sim") == 0.05

    baseline = {"metrics": {
        "wall.scaling.pgBat.2w": {"value": 100.0, "kind": "wall",
                                  "direction": "higher", "unit": ""},
        "wall.engine_events_per_sec": {"value": 100.0, "kind": "wall",
                                       "direction": "higher", "unit": ""},
    }}
    # A 20% drop: inside the scaling class's 25%, outside plain wall's
    # 15%.
    current = {
        "wall.scaling.pgBat.2w": {"value": 80.0, "kind": "wall"},
        "wall.engine_events_per_sec": {"value": 80.0, "kind": "wall"},
    }
    diff = compare_baseline(baseline, current)
    assert diff.regressions == ["wall.engine_events_per_sec"]
