"""Behavioural tests for the advanced algorithms: 2Q, LIRS, MQ, ARC,
CAR, CLOCK-PRO, SEQ.

These verify the algorithm-defining behaviours: ghost-list promotion,
scan resistance, adaptation, frequency protection, and sequence
detection — the properties the paper's hit-ratio arguments rest on.
"""

from __future__ import annotations

import random

import pytest

from repro.policies import (ARCPolicy, CARPolicy, ClockProPolicy, LIRSPolicy,
                            MQPolicy, SEQPolicy, TwoQPolicy)


def key(block: int) -> tuple:
    return ("t", block)


def scan(policy, start: int, count: int) -> None:
    for block in range(start, start + count):
        policy.access(key(block))


class Test2Q:
    def test_new_pages_enter_a1in(self):
        twoq = TwoQPolicy(8)
        twoq.on_miss(key(0))
        assert key(0) in twoq.a1in_keys
        assert key(0) not in twoq.am_keys

    def test_ghost_hit_promotes_to_am(self):
        twoq = TwoQPolicy(8, kin_fraction=0.25, kout_fraction=0.5)
        # Fill and overflow A1in so page 0 becomes a ghost.
        for block in range(12):
            twoq.on_miss(key(block))
        assert key(0) in twoq.a1out_keys
        twoq.on_miss(key(0))  # ghost hit
        assert key(0) in twoq.am_keys

    def test_a1in_hits_do_not_promote(self):
        # Correlated references inside A1in are deliberately ignored.
        twoq = TwoQPolicy(8)
        twoq.on_miss(key(0))
        twoq.on_hit(key(0))
        twoq.on_hit(key(0))
        assert key(0) in twoq.a1in_keys
        assert key(0) not in twoq.am_keys

    def test_ghost_list_bounded(self):
        twoq = TwoQPolicy(8, kout_fraction=0.5)
        for block in range(200):
            twoq.on_miss(key(block))
        assert len(list(twoq.a1out_keys)) <= twoq.kout

    def test_scan_resistance(self):
        # Pages proven hot (evicted from A1in, then re-referenced via
        # the ghost list into Am) survive a long one-touch scan: the
        # scan lives and dies inside A1in.
        twoq = TwoQPolicy(20)
        hot = [key(block) for block in range(4)]
        for page in hot:
            twoq.access(page)
        scan(twoq, 500, 22)        # push the hot pages out through A1in
        for page in hot:
            result = twoq.access(page)   # ghost hits -> Am
            assert not result.hit
        assert all(page in twoq.am_keys for page in hot)
        scan(twoq, 1000, 100)
        for page in hot:
            assert page in twoq, "scan evicted a hot Am page"

    def test_am_hit_moves_to_mru(self):
        twoq = TwoQPolicy(8)
        for block in range(12):
            twoq.on_miss(key(block))
        twoq.on_miss(key(0))   # ghost -> Am
        twoq.on_miss(key(1))   # ghost -> Am
        twoq.on_hit(key(0))    # 0 becomes MRU of Am
        assert list(twoq.am_keys) == [key(1), key(0)]


class TestLIRS:
    def test_cold_start_fills_lir_first(self):
        lirs = LIRSPolicy(10, hir_fraction=0.2)
        for block in range(8):
            lirs.on_miss(key(block))
        assert lirs.lir_count == lirs.lir_capacity

    def test_hir_page_evicted_before_lir(self):
        lirs = LIRSPolicy(10, hir_fraction=0.2)
        for block in range(10):
            lirs.on_miss(key(block))
        # Pages 0..7 are LIR; 8..9 are HIR residents in Q.
        victim = lirs.on_miss(key(100))
        assert victim in (key(8), key(9))

    def test_ghost_hit_promotes_to_lir(self):
        lirs = LIRSPolicy(10, hir_fraction=0.2)
        for block in range(10):
            lirs.on_miss(key(block))
        victim = lirs.on_miss(key(100))  # evicts a HIR page -> ghost
        assert lirs.state_of(victim) == "NHIR"
        lirs.on_miss(victim)  # re-reference within test period
        assert lirs.state_of(victim) == "LIR"

    def test_loop_beats_lru_shape(self):
        # A loop slightly larger than the cache: LIRS keeps a stable
        # LIR set and scores hits where LRU/CLOCK would thrash to zero.
        capacity = 20
        lirs = LIRSPolicy(capacity, hir_fraction=0.1)
        from repro.policies import LRUPolicy
        lru = LRUPolicy(capacity)
        lirs_hits = lru_hits = 0
        for i in range(2000):
            block = i % (capacity + 5)
            lirs_hits += lirs.access(key(block)).hit
            lru_hits += lru.access(key(block)).hit
        assert lru_hits == 0
        assert lirs_hits > 500

    def test_ghosts_bounded(self):
        lirs = LIRSPolicy(10, max_ghosts=15)
        for block in range(500):
            lirs.on_miss(key(block))
        assert lirs.ghost_count <= 15

    def test_resident_hir_hit_refreshes(self):
        lirs = LIRSPolicy(10, hir_fraction=0.3)
        for block in range(10):
            lirs.on_miss(key(block))
        # 7,8,9 are HIR; hit 7 while still in the stack -> promoted LIR.
        lirs.on_hit(key(7))
        assert lirs.state_of(key(7)) == "LIR"


class TestMQ:
    def test_frequency_promotes_queue_level(self):
        mq = MQPolicy(8, n_queues=4, life_time=1000)
        mq.on_miss(key(0))
        assert mq.queue_of(key(0)) == 0      # freq 1 -> Q0
        mq.on_hit(key(0))
        assert mq.queue_of(key(0)) == 1      # freq 2 -> Q1
        for _ in range(2):
            mq.on_hit(key(0))
        assert mq.queue_of(key(0)) == 2      # freq 4 -> Q2

    def test_eviction_from_lowest_queue(self):
        mq = MQPolicy(4, n_queues=4, life_time=1000)
        for block in range(4):
            mq.on_miss(key(block))
        mq.on_hit(key(0))  # 0 now in Q1, others in Q0
        victim = mq.on_miss(key(9))
        assert victim == key(1)  # LRU of Q0

    def test_expired_pages_demote(self):
        mq = MQPolicy(4, n_queues=4, life_time=3)
        mq.on_miss(key(0))
        for _ in range(3):
            mq.on_hit(key(0))   # Q2
        level = mq.queue_of(key(0))
        assert level == 2
        # Touch other pages until 0's lifetime expires repeatedly.
        for block in range(1, 4):
            mq.on_miss(key(block))
        for i in range(30):
            mq.on_hit(key(1 + (i % 3)))
        assert mq.queue_of(key(0)) < level

    def test_ghost_restores_frequency(self):
        mq = MQPolicy(2, n_queues=4, life_time=1000, qout_factor=4.0)
        mq.on_miss(key(0))
        for _ in range(3):
            mq.on_hit(key(0))          # freq 4
        mq.on_miss(key(1))
        # Force 0 out: hit 1 so 0 is the eviction candidate by queue...
        mq.on_remove(key(0))
        ghosts = dict(mq.ghost_entries())
        assert key(0) not in ghosts
        # Removed explicitly -> not a ghost; now test via eviction:
        mq.on_miss(key(0))             # freq restarts at 1 (no ghost)
        assert mq.frequency_of(key(0)) == 1
        mq.on_hit(key(0))              # freq 2
        victim = mq.on_miss(key(2))    # evicts 1 (freq 1)
        assert victim == key(1)
        assert (key(1), 1) in mq.ghost_entries()
        mq.on_miss(key(1))             # ghost hit: freq restored + 1
        assert mq.frequency_of(key(1)) == 2

    def test_qout_bounded(self):
        mq = MQPolicy(4, qout_factor=2.0)
        for block in range(100):
            mq.on_miss(key(block))
        assert len(list(mq.ghost_entries())) <= mq.qout_capacity


class TestARC:
    def test_t1_hit_moves_to_t2(self):
        arc = ARCPolicy(8)
        arc.on_miss(key(0))
        assert key(0) in arc.t1_keys
        arc.on_hit(key(0))
        assert key(0) in arc.t2_keys

    def test_pure_cold_stream_leaves_no_b1(self):
        # Canonical ARC case IV(a): with T1 full and B1 empty the T1
        # LRU is dropped outright, never ghosted.
        arc = ARCPolicy(4)
        for block in range(8):
            arc.on_miss(key(block))
        assert list(arc.b1_keys) == []

    def test_b1_ghost_hit_grows_p(self):
        arc = ARCPolicy(4)
        arc.on_miss(key(0))
        arc.on_hit(key(0))            # 0 -> T2
        for block in range(1, 5):
            arc.on_miss(key(block))   # REPLACE demotes T1 LRU into B1
        assert key(1) in arc.b1_keys
        before = arc.p
        arc.on_miss(key(1))
        assert arc.p > before
        assert key(1) in arc.t2_keys

    def test_b2_ghost_hit_shrinks_p(self):
        arc = ARCPolicy(4)
        for block in range(4):
            arc.on_miss(key(block))
            arc.on_hit(key(block))    # all in T2
        for block in range(10, 16):
            arc.on_miss(key(block))   # T2 pages spill into B2
        b2 = list(arc.b2_keys)
        assert b2
        arc._p = 3.0                  # force nonzero to observe shrink
        arc.on_miss(b2[0])
        assert arc.p < 3.0

    def test_scan_resistance(self):
        # One-touch scans live and die in T1 without displacing T2.
        arc = ARCPolicy(20)
        hot = [key(block) for block in range(4)]
        rng = random.Random(6)
        for _ in range(300):
            arc.access(hot[rng.randrange(4)])
        scan(arc, 1000, 200)
        surviving = sum(1 for page in hot if page in arc)
        assert surviving == 4

    def test_history_bounded(self):
        arc = ARCPolicy(8)
        for block in range(1000):
            arc.access(key(block % 60))
        assert len(list(arc.b1_keys)) + len(list(arc.t1_keys)) <= 8 + 8
        total = (len(list(arc.t1_keys)) + len(list(arc.t2_keys))
                 + len(list(arc.b1_keys)) + len(list(arc.b2_keys)))
        assert total <= 16


class TestCAR:
    def test_hits_set_reference_bit_only(self):
        car = CARPolicy(8)
        car.on_miss(key(0))
        assert not car.reference_bit(key(0))
        car.on_hit(key(0))
        assert car.reference_bit(key(0))

    def test_referenced_t1_page_promotes_to_t2_on_sweep(self):
        car = CARPolicy(2)
        car.on_miss(key(0))
        car.on_hit(key(0))
        car.on_miss(key(1))
        car.on_miss(key(2))  # sweep: 0 referenced -> T2; victim found
        assert key(0) in car
        assert not car.reference_bit(key(0))

    def test_ghost_hit_adapts_p(self):
        car = CARPolicy(4)
        for block in range(4):
            car.on_miss(key(block))
        car.on_hit(key(0))
        car.on_hit(key(1))            # 0,1 referenced -> promoted on sweep
        car.on_miss(key(10))          # sweep: 0,1 -> T2; evicts 2 -> B1
        assert key(2) in car._b1
        before = car.p
        car.on_miss(key(2))           # B1 ghost hit
        assert car.p > before
        assert key(2) in car


class TestClockPro:
    def test_first_pages_are_cold(self):
        cpro = ClockProPolicy(8)
        cpro.on_miss(key(0))
        assert cpro.status_of(key(0)) == "cold"

    def test_ghost_hit_becomes_hot_and_grows_cold_target(self):
        cpro = ClockProPolicy(4)
        for block in range(20):
            cpro.on_miss(key(block))
        ghosts = [k for k, node in cpro._nodes.items()
                  if node.status == "ghost"]
        assert ghosts
        target_before = cpro.cold_target
        chosen = ghosts[0]
        cpro.on_miss(chosen)
        assert cpro.status_of(chosen) == "hot"
        assert cpro.cold_target >= target_before

    def test_counts_consistent(self):
        cpro = ClockProPolicy(16)
        rng = random.Random(13)
        for _ in range(3000):
            block = rng.randint(0, 80)
            cpro.access(key(block))
            assert cpro.hot_count + cpro.cold_count == cpro.resident_count
            assert cpro.resident_count <= 16
            assert cpro.ghost_count <= 16 + 1

    def test_loop_beats_clock(self):
        from repro.policies import ClockPolicy
        capacity = 20
        cpro = ClockProPolicy(capacity)
        clock = ClockPolicy(capacity)
        cpro_hits = clock_hits = 0
        for i in range(3000):
            block = i % (capacity + 5)
            cpro_hits += cpro.access(key(block)).hit
            clock_hits += clock.access(key(block)).hit
        assert clock_hits < 100
        assert cpro_hits > clock_hits


class TestSEQ:
    def test_detects_sequences(self):
        seq = SEQPolicy(100, seq_threshold=8)
        for block in range(20):
            seq.on_miss(("table_a", block))
        lengths = seq.active_sequence_lengths()
        assert lengths.get("table_a") == 20

    def test_broken_run_restarts(self):
        seq = SEQPolicy(100, seq_threshold=8)
        for block in range(5):
            seq.on_miss(("table_a", block))
        seq.on_miss(("table_a", 50))
        assert seq.active_sequence_lengths()["table_a"] == 1

    def test_sequence_pages_sacrificed_before_hot_pages(self):
        seq = SEQPolicy(30, seq_threshold=10)
        hot = [key(block) for block in range(5)]
        rng = random.Random(14)
        for _ in range(200):
            seq.access(hot[rng.randrange(5)])
        # A long sequential scan: victims should come from the scan.
        for block in range(1000, 1060):
            seq.access(("scan_table", block))
        for page in hot:
            assert page in seq, "scan displaced a hot page"

    def test_plain_lru_without_tuple_keys(self):
        seq = SEQPolicy(2, seq_threshold=4)
        seq.access("a")
        seq.access("b")
        seq.access("a")
        assert seq.access("c").evicted == "b"

    def test_hit_refreshes_recency(self):
        seq = SEQPolicy(2)
        seq.on_miss(key(0))
        seq.on_miss(key(1))
        seq.on_hit(key(0))
        assert seq.on_miss(key(2)) == key(1)
