"""Tests for the figure/table drivers and the CLI (small targets).

The benchmarks run these drivers at full scale and assert the paper's
shapes; here we only verify plumbing — row layout, rendering, CSV
emission — with tiny access targets so the whole module stays fast.
"""

from __future__ import annotations

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.figures import FIG2_BATCH_SIZES, fig2, fig8
from repro.harness.tables import table1, table2, table3


class TestFig2Driver:
    def test_row_layout(self):
        result = fig2(target_accesses=6000, seed=3)
        assert len(result.rows) == len(FIG2_BATCH_SIZES)
        assert [row[0] for row in result.rows] == list(FIG2_BATCH_SIZES)
        for row in result.rows:
            assert row[1] >= 0  # lock us/access
        rendered = result.render()
        assert "Figure 2" in rendered
        assert "batch size" in rendered

    def test_raw_results_attached(self):
        result = fig2(target_accesses=6000, seed=3)
        assert len(result.raw) == len(FIG2_BATCH_SIZES)
        assert all(r.accesses > 0 for r in result.raw)


class TestFig8Driver:
    def test_row_layout(self):
        result = fig8(target_accesses=6000, seed=3,
                      trace_accesses=20_000)
        # Two workloads x five fractions.
        assert len(result.rows) == 10
        workloads = {row[0] for row in result.rows}
        assert workloads == {"dbt1", "dbt2"}
        for row in result.rows:
            _, pages, frac, hit_clock, hit_2q, hit_wrapped, t0, t1, t2 \
                = row
            assert pages >= 128
            assert 0.0 <= hit_clock <= 1.0
            assert 0.0 <= hit_2q <= 1.0
            assert t0 == 1.0  # normalized to pgclock


class TestTableDrivers:
    def test_table1_static(self):
        result = table1()
        assert len(result.rows) == 5
        assert result.rows[0][0] == "pgclock"
        assert "Table I" in result.render()

    def test_table2_layout(self):
        result = table2(target_accesses=5000, seed=3)
        assert [row[0] for row in result.rows] == [2, 4, 8, 16, 32, 64]
        assert len(result.raw) == 18  # 6 sizes x 3 workloads

    def test_table3_layout(self):
        result = table3(target_accesses=5000, seed=3)
        assert [row[0] for row in result.rows] == [2, 4, 8, 16, 32, 64]
        # Throughputs present for all three workloads.
        for row in result.rows:
            assert all(value >= 0 for value in row[1:4])


class TestCli:
    def test_table1_prints(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "pgBatPre" in out
        assert "regenerated" in out

    def test_csv_emission(self, tmp_path, capsys):
        assert cli_main(["table1", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "table1.csv"
        assert csv_file.exists()
        content = csv_file.read_text()
        assert content.splitlines()[0] == "Name,Replacement,Enhancement"
        assert "pgclock" in content

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["figNope"])
