"""Tests for the workload generators."""

from __future__ import annotations

import itertools
import random
from collections import Counter

import pytest

from repro.bufmgr.tags import PageId
from repro.errors import ConfigError, WorkloadError
from repro.workloads import (DBT1Workload, DBT2Workload, SyntheticTrace,
                             TableScanWorkload, TraceWorkload, ZipfGenerator,
                             available_workloads, make_workload)
from repro.workloads.base import merged_trace


def take_transactions(workload, thread_index, count):
    stream = workload.transaction_stream(thread_index)
    return list(itertools.islice(stream, count))


class TestZipf:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfGenerator(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfGenerator(10, -1.0)

    def test_skew_orders_probability(self):
        zipf = ZipfGenerator(100, 1.0)
        assert (zipf.probability_of_rank(0)
                > zipf.probability_of_rank(10)
                > zipf.probability_of_rank(99))

    def test_theta_zero_is_uniform(self):
        zipf = ZipfGenerator(50, 0.0)
        assert zipf.probability_of_rank(0) == pytest.approx(
            zipf.probability_of_rank(49))

    def test_samples_within_range_and_skewed(self):
        zipf = ZipfGenerator(1000, 0.9)
        rng = random.Random(5)
        draws = [zipf.sample(rng) for _ in range(20000)]
        assert all(0 <= draw < 1000 for draw in draws)
        counts = Counter(draws)
        top_share = sum(count for value, count in counts.items()
                        if value < 100) / len(draws)
        assert top_share > 0.55  # top 10% of ranks get most accesses

    def test_permutation_scatters_hot_values(self):
        plain = ZipfGenerator(1000, 1.2)
        permuted = ZipfGenerator(1000, 1.2, permute=True, permute_seed=3)
        rng = random.Random(5)
        hot_plain = Counter(plain.sample(rng)
                            for _ in range(5000)).most_common(1)[0][0]
        rng = random.Random(5)
        hot_permuted = Counter(permuted.sample(rng)
                               for _ in range(5000)).most_common(1)[0][0]
        assert hot_plain == 0
        assert hot_permuted != 0

    def test_deterministic_given_rng(self):
        zipf = ZipfGenerator(100, 0.8)
        a = [zipf.sample(random.Random(1)) for _ in range(5)]
        b = [zipf.sample(random.Random(1)) for _ in range(5)]
        assert a == b


class TestRegistry:
    def test_names(self):
        assert set(available_workloads()) == {"dbt1", "dbt2", "tablescan",
                                              "tpcc_lite"}

    def test_make_unknown_raises(self):
        with pytest.raises(ConfigError):
            make_workload("nope")


@pytest.mark.parametrize("name,kwargs", [
    ("dbt1", {"scale": 0.2}),
    ("dbt2", {"n_warehouses": 5}),
    ("tablescan", {"n_tables": 4, "pages_per_table": 50}),
])
class TestWorkloadContract:
    def test_streams_deterministic(self, name, kwargs):
        first = make_workload(name, seed=9, **kwargs)
        second = make_workload(name, seed=9, **kwargs)
        pages_a = [t.pages for t in take_transactions(first, 3, 10)]
        pages_b = [t.pages for t in take_transactions(second, 3, 10)]
        assert pages_a == pages_b

    def test_streams_differ_across_threads(self, name, kwargs):
        workload = make_workload(name, seed=9, **kwargs)
        a = [t.pages for t in take_transactions(workload, 0, 5)]
        b = [t.pages for t in take_transactions(workload, 1, 5)]
        if name == "tablescan":
            # Different threads scan different tables.
            assert a[0][0].space != b[0][0].space
        else:
            assert a != b

    def test_all_accesses_within_schema(self, name, kwargs):
        workload = make_workload(name, seed=9, **kwargs)
        schema = workload.schema
        for transaction in take_transactions(workload, 0, 30):
            for page in transaction.pages:
                relation = schema[str(page.space)]
                assert 0 <= page.block < relation.n_pages

    def test_working_set_covers_accesses(self, name, kwargs):
        workload = make_workload(name, seed=9, **kwargs)
        working_set = set(workload.working_set_pages())
        for transaction in take_transactions(workload, 2, 20):
            assert working_set.issuperset(transaction.pages)

    def test_seed_changes_stream(self, name, kwargs):
        if name == "tablescan":
            pytest.skip("tablescan is deliberately seed-independent")
        a = make_workload(name, seed=1, **kwargs)
        b = make_workload(name, seed=2, **kwargs)
        assert ([t.pages for t in take_transactions(a, 0, 5)]
                != [t.pages for t in take_transactions(b, 0, 5)])


class TestDBT1:
    def test_index_roots_are_hot(self):
        workload = DBT1Workload(seed=3, scale=0.2)
        trace = merged_trace(workload, 20000)
        counts = Counter(trace)
        root = PageId("item_idx", 0)
        assert counts[root] > len(trace) / 200

    def test_item_accesses_zipf_skewed(self):
        workload = DBT1Workload(seed=3, scale=0.2)
        trace = merged_trace(workload, 30000)
        item_counts = Counter(page for page in trace
                              if page.space == "item")
        total_items = sum(item_counts.values())
        top_50 = sum(count for _, count in item_counts.most_common(50))
        assert top_50 / total_items > 0.4

    def test_scale_controls_size(self):
        small = DBT1Workload(scale=0.1)
        large = DBT1Workload(scale=1.0)
        assert small.total_pages < large.total_pages

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            DBT1Workload(scale=0.0)


class TestDBT2:
    def test_mix_frequencies(self):
        workload = DBT2Workload(seed=3, n_warehouses=5)
        kinds = Counter(t.kind for t in take_transactions(workload, 0, 2000))
        total = sum(kinds.values())
        assert kinds["new_order"] / total == pytest.approx(0.45, abs=0.05)
        assert kinds["payment"] / total == pytest.approx(0.43, abs=0.05)
        for rare in ("order_status", "delivery", "stock_level"):
            assert kinds[rare] / total == pytest.approx(0.04, abs=0.02)

    def test_home_warehouse_affinity(self):
        workload = DBT2Workload(seed=3, n_warehouses=5,
                                remote_warehouse_prob=0.0)
        for transaction in take_transactions(workload, 2, 50):
            warehouse_pages = [page for page in transaction.pages
                               if page.space == "warehouse"]
            assert all(page.block == 2 for page in warehouse_pages)

    def test_single_warehouse_works(self):
        workload = DBT2Workload(seed=3, n_warehouses=1)
        transactions = take_transactions(workload, 0, 50)
        assert all(len(t) > 0 for t in transactions)

    def test_invalid_warehouses(self):
        with pytest.raises(WorkloadError):
            DBT2Workload(n_warehouses=0)


class TestTableScan:
    def test_scans_are_sequential_and_complete(self):
        workload = TableScanWorkload(n_tables=3, pages_per_table=40)
        transaction = take_transactions(workload, 1, 1)[0]
        assert len(transaction) == 40
        blocks = [page.block for page in transaction.pages]
        assert blocks == list(range(40))
        assert transaction.work_factor == TableScanWorkload.SCAN_WORK_FACTOR

    def test_tables_assigned_round_robin(self):
        workload = TableScanWorkload(n_tables=2, pages_per_table=10)
        t0 = take_transactions(workload, 0, 1)[0]
        t2 = take_transactions(workload, 2, 1)[0]
        assert t0.pages[0].space == t2.pages[0].space

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TableScanWorkload(n_tables=0)
        with pytest.raises(WorkloadError):
            TableScanWorkload(pages_per_table=0)


class TestTraces:
    def test_trace_workload_replays_in_chunks(self):
        accesses = [PageId("t", block) for block in range(10)]
        workload = TraceWorkload(accesses, accesses_per_transaction=4)
        transactions = take_transactions(workload, 0, 3)
        assert [len(t) for t in transactions] == [4, 4, 2]
        replayed = [page for t in transactions for page in t.pages]
        assert replayed == accesses

    def test_trace_workload_validation(self):
        with pytest.raises(WorkloadError):
            TraceWorkload([])

    def test_synthetic_builders(self):
        trace = (SyntheticTrace(seed=1)
                 .zipf("hot", 100, 500, theta=0.9)
                 .scan("cold", 50, repeats=2)
                 .loop("loop", 10, 30))
        accesses = trace.accesses
        assert len(accesses) == 500 + 100 + 30
        scan_pages = [page for page in accesses if page.space == "cold"]
        assert [page.block for page in scan_pages] == list(range(50)) * 2

    def test_interleave(self):
        a = SyntheticTrace(seed=1).scan("a", 4)
        b = SyntheticTrace(seed=1).scan("b", 4)
        merged = a.interleave(b)
        spaces = [page.space for page in merged.accesses]
        assert spaces == ["a", "b"] * 4

    def test_merged_trace_length_and_determinism(self):
        workload = DBT1Workload(seed=5, scale=0.2)
        trace_a = merged_trace(workload, 5000)
        trace_b = merged_trace(workload, 5000)
        assert len(trace_a) == 5000
        assert trace_a == trace_b
