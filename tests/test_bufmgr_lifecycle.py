"""Pinned-frame lifecycle: stale hits, aborted installs, invalidation.

These are the regression tests for the three lifecycle fixes that ride
with the query-execution tier:

* a probe hit whose frame is retagged/invalidated while the thread
  sleeps on ``io_done`` must be retried as a miss (not reported as a
  hit of the wrong page);
* a thread aborted mid-access (generator close — the native
  join-deadline abort and failure injection both do this) must not
  leak its pin, and a mid-flight install must be backed out;
* ``invalidate`` on a resident-but-invalid frame must fire the
  orphaned ``io_done`` so concurrent waiters wake and retry instead of
  sleeping forever.

The sim tests construct the racing interleavings exactly (interloper
processes mutate between the victim thread's yields); the native test
replays the same scenario on a real OS thread.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bufmgr.manager import BufferManager
from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import DirectHandler, ThreadSlot
from repro.core.config import BPConfig
from repro.db.storage import DiskArray
from repro.errors import BufferError_
from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.hardware.machines import ALTIX_350
from repro.harness.systems import build_system
from repro.policies.lru import LRUPolicy
from repro.runtime.native import NativeRuntime
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Timeout
from repro.sync.locks import SimLock

P = PageId("t", 1)
Q = PageId("t", 2)


def build_rig(sim, capacity=8, disk=None):
    costs = CostModel(user_work_us=1.0, context_switch_us=0.5)
    policy = LRUPolicy(capacity)
    lock = SimLock(sim, grant_cost_us=costs.lock_grant_us,
                   try_cost_us=costs.try_lock_us)
    handler = DirectHandler(policy, lock, MetadataCacheModel(costs), costs,
                            BPConfig.baseline())
    manager = BufferManager(sim, capacity, policy, handler, costs, disk=disk)
    return manager, lock


def make_thread(sim, index=0, n_cpus=2, pool=None):
    pool = pool or ProcessorPool(sim, n_cpus, context_switch_us=0.5)
    thread = CpuBoundThread(pool, name=f"t{index}")
    return ThreadSlot(thread, index, queue_size=64), pool


def frames_accounted(manager):
    """Every frame is resident, free, or legitimately mid-install."""
    return manager.resident_count + len(manager._free) == manager.capacity


def park_on_io(manager, page):
    """Make ``page`` resident-but-invalid with a pending read event."""
    desc = manager.lookup(page)
    desc.valid = False
    desc.io_done = manager.sim.event()
    return desc


class TestStaleHitRetry:
    @pytest.mark.parametrize("is_write", [False, True])
    def test_retagged_frame_retried_as_miss(self, sim, is_write):
        """The frame is reused for another page while the reader sleeps.

        This is the interleaving the native backend allows between a
        reader's probe and its io_done wakeup; pre-fix, ``access``
        reported a hit of page P while the frame actually held Q and P
        was never installed at all.
        """
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        desc = park_on_io(manager, P)
        slot, _ = make_thread(sim)
        outcomes = []

        def reader():
            hit = yield from manager.access(slot, P, is_write=is_write)
            outcomes.append(hit)

        def interloper():
            # Let the reader pin the frame and park, then reuse the
            # frame for Q — eviction + reinstall compressed into one
            # atomic block.
            yield Timeout(sim, 50.0)
            assert desc.pin_count == 1  # the reader parked with its pin
            manager.table.remove(P)
            manager.policy.on_remove(P)
            assert manager.policy.on_miss(Q) is None
            desc.retag(Q)
            desc.valid = True
            manager.table.insert(Q, desc)
            io_done, desc.io_done = desc.io_done, None
            io_done.succeed()

        slot.thread.start(reader())
        sim.spawn(interloper(), name="interloper")
        sim.run()

        assert outcomes == [False]
        stats = manager.stats
        assert (stats.accesses, stats.hits, stats.misses) == (1, 0, 1)
        assert stats.stale_hit_retries == 1
        served = manager.lookup(P)
        assert served is not None and served is not desc
        assert served.valid and served.dirty == is_write
        assert desc.matches(Q)
        manager.check_invariants(expect_no_pins=True)

    def test_invalidated_frame_retried_as_miss(self, sim):
        """The waited-on install aborts; the reader must re-install P."""
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        desc = park_on_io(manager, P)
        slot, _ = make_thread(sim)
        outcomes = []

        def reader():
            hit = yield from manager.access(slot, P)
            outcomes.append(hit)

        def interloper():
            yield Timeout(sim, 50.0)
            # Back the install out underneath the parked reader, as
            # _abort_install does when the installer dies.
            manager.table.remove(P)
            manager.policy.on_remove(P)
            desc.tag = None
            desc.valid = False
            desc.generation += 1
            io_done, desc.io_done = desc.io_done, None
            io_done.succeed()

        slot.thread.start(reader())
        sim.spawn(interloper(), name="interloper")
        sim.run()

        assert outcomes == [False]
        assert manager.stats.stale_hit_retries == 1
        # The reader's unpin reclaimed the orphaned frame into the free
        # list, and its own retry recycled it for the fresh install.
        served = manager.lookup(P)
        assert served is desc and served.valid
        assert frames_accounted(manager)
        manager.check_invariants(expect_no_pins=True)

    def test_native_stale_hit_retried_as_miss(self):
        """Same race on a real OS thread: retag during the event wait."""
        runtime = NativeRuntime(seed=0)
        build = build_system("pg2Q", runtime, 8, ALTIX_350,
                             queue_size=8, batch_threshold=4)
        manager = build.manager
        manager.attach_header_locks(threading.Lock)
        manager.warm_with([P])
        desc = manager.lookup(P)
        desc.valid = False
        desc.io_done = runtime.event()
        pool = runtime.create_pool(2)
        thread = runtime.create_thread(pool, name="reader", seed=0)
        slot = ThreadSlot(thread, 0, queue_size=8)
        outcomes = []

        def reader():
            hit = yield from manager.access(slot, P)
            outcomes.append(hit)
            yield from build.handler.flush(slot)

        thread.start(reader())
        deadline = time.monotonic() + 5.0
        while desc.pin_count == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert desc.pin_count == 1  # reader pinned, parked (or parking)
        manager.table.remove(P)
        manager.policy.on_remove(P)
        manager.policy.on_miss(Q)
        desc.retag(Q)
        desc.valid = True
        manager.table.insert(Q, desc)
        io_done, desc.io_done = desc.io_done, None
        io_done.succeed()

        assert thread.join(5.0)
        assert thread.error is None
        assert outcomes == [False]
        assert manager.stats.stale_hit_retries == 1
        assert manager.lookup(P) is not None
        manager.check_invariants(expect_no_pins=True)


class TestAbortedAccess:
    def test_aborted_miss_backs_out_install(self, sim):
        """Close the reader mid-disk-read: no pin leak, no placeholder."""
        disk = DiskArray(sim, service_time_us=400.0, concurrency=4)
        manager, _ = build_rig(sim, disk=disk)
        slot, _ = make_thread(sim)

        def reader():
            yield from manager.access(slot, P)
            raise AssertionError("the aborted access must not complete")

        body = reader()
        slot.thread.start(body)
        sim.run(until=100.0)  # parked in the 400us disk read
        assert manager.lookup(P) is not None  # placeholder installed
        body.close()

        assert manager.lookup(P) is None
        assert frames_accounted(manager)
        manager.check_invariants(expect_no_pins=True)
        sim.run()
        manager.check_invariants(expect_no_pins=True)

    def test_aborted_install_wakes_waiter_which_reinstalls(self, sim):
        """A second reader parked on the dying install retries as a miss."""
        disk = DiskArray(sim, service_time_us=400.0, concurrency=4)
        manager, _ = build_rig(sim, disk=disk)
        pool = ProcessorPool(sim, 2, context_switch_us=0.5)
        slot_a, _ = make_thread(sim, 0, pool=pool)
        slot_b, _ = make_thread(sim, 1, pool=pool)
        outcomes = []

        def installer():
            yield from manager.access(slot_a, P)
            raise AssertionError("the aborted install must not complete")

        def waiter():
            yield from slot_b.thread.sleep_blocked(50.0)
            hit = yield from manager.access(slot_b, P)
            outcomes.append(hit)

        body_a = installer()
        slot_a.thread.start(body_a)
        slot_b.thread.start(waiter())
        sim.run(until=100.0)  # A mid-read, B parked on A's io_done
        body_a.close()
        sim.run()

        assert outcomes == [False]
        assert manager.stats.stale_hit_retries == 1
        served = manager.lookup(P)
        assert served is not None and served.valid
        assert frames_accounted(manager)
        manager.check_invariants(expect_no_pins=True)

    def test_aborted_hit_wait_releases_pin(self, sim):
        """Close a reader parked on io_done: its hit-path pin unwinds."""
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        desc = park_on_io(manager, P)
        slot, _ = make_thread(sim)

        def reader():
            yield from manager.access(slot, P)
            raise AssertionError("the aborted access must not complete")

        body = reader()
        slot.thread.start(body)
        sim.run(until=50.0)
        assert desc.pin_count == 1
        body.close()
        assert desc.pin_count == 0
        manager.check_invariants(expect_no_pins=True)

    def test_aborted_absorbed_miss_retries(self, sim):
        """The absorbed-miss wait also re-checks the tag after waking.

        B misses while H holds the replacement lock; by the time B gets
        the lock, an installer's placeholder for P is in the table, so
        B absorbs the miss and parks on its io_done. The install is
        then backed out: B must retry (and re-install P itself), not
        return the dead frame.
        """
        manager, lock = build_rig(sim)
        pool = ProcessorPool(sim, 2, context_switch_us=0.5)
        slot_h, _ = make_thread(sim, 0, pool=pool)
        slot_b, _ = make_thread(sim, 1, pool=pool)
        outcomes = []
        placeholder = []

        def holder():
            yield from lock.acquire(slot_h.thread)
            yield from slot_h.thread.sleep_blocked(100.0)
            lock.release(slot_h.thread)

        def reader():
            yield from slot_b.thread.sleep_blocked(5.0)
            hit = yield from manager.access(slot_b, P, is_write=True)
            outcomes.append(hit)

        def interloper():
            # While B queues on the lock, install a placeholder for P
            # exactly as _serve_miss leaves one mid-read...
            yield Timeout(sim, 50.0)
            assert manager.policy.on_miss(P) is None
            desc = manager._take_frame(None)
            desc.retag(P)
            desc.pin()
            desc.io_done = sim.event()
            manager.table.insert(P, desc)
            placeholder.append(desc)
            # ... then, once B has absorbed the miss and parked on the
            # io_done, abort the install.
            yield Timeout(sim, 100.0)
            assert desc.pin_count == 2  # installer + absorbed reader
            manager._abort_install(desc)

        slot_h.thread.start(holder())
        slot_b.thread.start(reader())
        sim.spawn(interloper(), name="interloper")
        sim.run()

        assert outcomes == [False]
        stats = manager.stats
        assert stats.stale_hit_retries == 1
        assert stats.absorbed_misses == 0  # undone when the absorb died
        assert (stats.hits, stats.misses) == (0, 1)
        served = manager.lookup(P)
        assert served is not None and served.valid and served.dirty
        # The dead placeholder's frame was reclaimed into the free list
        # and recycled by B's retry.
        assert served is placeholder[0]
        assert frames_accounted(manager)
        manager.check_invariants(expect_no_pins=True)


class TestInvalidate:
    def test_invalidate_clears_orphaned_io_done(self, sim):
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        desc = park_on_io(manager, P)
        event = desc.io_done
        assert manager.invalidate(P)
        assert desc.io_done is None
        assert event.triggered
        assert desc.tag is None and not desc.valid
        assert frames_accounted(manager)

    def test_invalidate_wakes_concurrent_reader(self, sim):
        """A reader parked on the orphaned io_done must not sleep forever.

        The reader models the native window between looking the frame
        up and re-checking it: it holds a reference to the event but no
        pin, so ``invalidate`` (which rejects pinned frames) can run
        underneath it. Pre-fix the event never fired and the reader
        deadlocked; post-fix it wakes and re-installs P as a miss.
        """
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        desc = park_on_io(manager, P)
        event = desc.io_done
        slot, _ = make_thread(sim)
        outcomes = []

        def reader():
            yield from slot.thread.wait(event)
            hit = yield from manager.access(slot, P)
            outcomes.append(hit)

        def interloper():
            yield Timeout(sim, 50.0)
            assert manager.invalidate(P)

        slot.thread.start(reader())
        sim.spawn(interloper(), name="interloper")
        sim.run()

        assert outcomes == [False]  # woke, retried, installed
        assert manager.lookup(P) is not None
        assert frames_accounted(manager)
        manager.check_invariants(expect_no_pins=True)

    def test_invalidate_pinned_still_raises(self, sim):
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        desc = manager.lookup(P)
        desc.pin()
        with pytest.raises(BufferError_):
            manager.invalidate(P)
        desc.unpin()

    def test_residual_pin_sweep_is_opt_in(self, sim):
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        desc = manager.lookup(P)
        desc.pin()
        manager.check_invariants()  # pins allowed by default
        with pytest.raises(BufferError_, match="residual pins"):
            manager.check_invariants(expect_no_pins=True)
        desc.unpin()
        manager.check_invariants(expect_no_pins=True)

    def test_negative_pin_count_always_caught(self, sim):
        manager, _ = build_rig(sim)
        manager.warm_with([P])
        manager.lookup(P).pin_count = -1
        with pytest.raises(BufferError_, match="negative pin"):
            manager.check_invariants()
