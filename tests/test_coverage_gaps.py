"""Edge-case coverage for corners the main suites pass over."""

from __future__ import annotations

import itertools

import pytest

from repro.bufmgr.tags import PageId
from repro.errors import PolicyError, WorkloadError
from repro.simcore.engine import Simulator, Timeout


class TestEnginePeekAndBudget:
    def test_peek_returns_next_timestamp(self, sim):
        assert sim.peek() is None
        sim.timeout(7.0)
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_run_after_drain_is_noop(self, sim):
        sim.timeout(1.0)
        sim.run()
        at = sim.now
        sim.run()
        assert sim.now == at

    def test_events_processed_accumulates(self, sim):
        for _ in range(5):
            sim.timeout(1.0)
        sim.run(max_events=2)
        sim.run()
        assert sim.events_processed == 5


class TestSeqHousekeeping:
    def test_max_sequences_trims_weakest(self):
        from repro.policies.seq import SEQPolicy
        policy = SEQPolicy(1000, seq_threshold=4, max_sequences=3)
        # Start runs in 5 spaces; the two weakest must be forgotten.
        for space_index in range(5):
            for block in range(space_index + 1):
                policy.on_miss((f"s{space_index}", block))
        lengths = policy.active_sequence_lengths()
        assert len(lengths) <= 3

    def test_non_tuple_keys_do_not_track_sequences(self):
        from repro.policies.seq import SEQPolicy
        policy = SEQPolicy(10)
        policy.on_miss("plain-string-key")
        assert policy.active_sequence_lengths() == {}


class TestLIRSEdges:
    def test_capacity_one(self):
        from repro.policies.lirs import LIRSPolicy
        policy = LIRSPolicy(1)
        for block in range(20):
            policy.access(("t", block % 3))
            assert policy.resident_count <= 1

    def test_invalid_hir_fraction(self):
        from repro.policies.lirs import LIRSPolicy
        with pytest.raises(PolicyError):
            LIRSPolicy(10, hir_fraction=1.5)


class TestDbt2Shapes:
    def test_delivery_touches_ten_districts(self):
        from repro.workloads.dbt2 import DBT2Workload
        workload = DBT2Workload(seed=4, n_warehouses=3)
        stream = workload.transaction_stream(0)
        delivery = next(t for t in itertools.islice(stream, 500)
                        if t.kind == "delivery")
        new_order_pages = [page for page in delivery.pages
                           if page.space == "new_order"]
        assert len(new_order_pages) == 10

    def test_stock_level_scans_contiguously(self):
        from repro.workloads.dbt2 import DBT2Workload
        workload = DBT2Workload(seed=4, n_warehouses=3)
        stream = workload.transaction_stream(1)
        stock_level = next(t for t in itertools.islice(stream, 800)
                           if t.kind == "stock_level")
        stock_blocks = [page.block for page in stock_level.pages
                        if page.space == "stock"]
        assert len(stock_blocks) == 40
        deltas = {(b - a) % DBT2Workload.STOCK_PAGES
                  for a, b in zip(stock_blocks, stock_blocks[1:])}
        assert deltas == {1}  # a contiguous (wrapping) sweep

    def test_remote_warehouse_probability(self):
        from repro.workloads.dbt2 import DBT2Workload
        workload = DBT2Workload(seed=4, n_warehouses=4,
                                remote_warehouse_prob=1.0)
        stream = workload.transaction_stream(0)  # home warehouse 0
        new_order = next(t for t in itertools.islice(stream, 100)
                         if t.kind == "new_order")
        stock_warehouses = {page.block // DBT2Workload.STOCK_PAGES
                            for page in new_order.pages
                            if page.space == "stock"}
        assert 0 not in stock_warehouses  # all lines remote


class TestSharedQueueStats:
    def test_merged_stats_include_record_lock(self, tiny_machine):
        from repro.harness.systems import build_system
        sim = Simulator()
        build = build_system("pgBatShared", sim, 64, tiny_machine)
        record_lock = build.extra["record_lock"]
        record_lock.stats.requests = 7
        build.lock.stats.requests = 3
        assert build.handler.merged_lock_stats().requests == 10


class TestFigureCharts:
    def test_fig2_includes_loglog_chart(self):
        from repro.harness.figures import fig2
        result = fig2(target_accesses=5000, seed=3)
        assert result.charts
        assert "(log y axis)" in result.charts[0]
        rendered = result.render(include_charts=True)
        assert "log-log" in rendered or "(log y axis)" in rendered

    def test_render_without_charts_by_default(self):
        from repro.harness.figures import fig2
        result = fig2(target_accesses=5000, seed=3)
        assert "(log y axis)" not in result.render()


class TestAnalysisSweep:
    def test_sweep_capacity_keys_and_policy_kwargs(self):
        from repro.analysis.hitratio import sweep_capacity
        trace = [PageId("t", block % 30) for block in range(500)]
        results = sweep_capacity("2q", trace, [5, 10],
                                 kin_fraction=0.5)
        assert set(results) == {5, 10}
        assert all(r.policy == "2q" for r in results.values())


class TestTinyLfuInRegistry:
    def test_make_policy_with_kwargs(self):
        from repro.policies.registry import make_policy
        policy = make_policy("tinylfu", 50, window_fraction=0.1)
        assert policy.window_capacity == 5

    def test_register_policy_and_duplicate_collision(self):
        import pytest

        from repro.errors import ConfigError
        from repro.policies.lru import LRUPolicy
        from repro.policies.registry import (available_policies,
                                             make_policy, register_policy)

        class Custom(LRUPolicy):
            name = "custom-test-policy"

        register_policy("custom-test-policy", Custom)
        assert "custom-test-policy" in available_policies()
        assert isinstance(make_policy("custom-test-policy", 4), Custom)
        # Re-registering the same name is a collision unless the
        # caller explicitly opts into replacement.
        with pytest.raises(ConfigError):
            register_policy("custom-test-policy", Custom)
        register_policy("custom-test-policy", Custom, replace=True)
        assert isinstance(make_policy("custom-test-policy", 4), Custom)


class TestThinkTime:
    def test_think_time_spends_off_cpu(self, tiny_machine):
        from repro.db.relations import Relation, Schema
        from repro.db.transactions import Transaction
        from repro.harness.experiment import ExperimentConfig, run_experiment
        from repro.workloads.base import Workload

        class ThinkWorkload(Workload):
            name = "think"

            def __init__(self, think_us, seed=0):
                super().__init__(seed)
                self.think_us = think_us
                self._relation = Relation("t", 16)
                self._schema = Schema([self._relation])

            @property
            def schema(self):
                return self._schema

            def transaction_stream(self, thread_index):
                while True:
                    yield Transaction("think",
                                      list(self._relation.pages()),
                                      think_time_us=self.think_us)

        def throughput(think_us):
            workload = ThinkWorkload(think_us)
            config = ExperimentConfig(
                system="pgclock", workload="think",
                machine=tiny_machine, n_processors=2, n_threads=2,
                target_accesses=2000, warmup_fraction=0.0)
            return run_experiment(config, workload=workload).throughput_tps

        # Think time idles the client between transactions: with as
        # many threads as CPUs, throughput must drop.
        assert throughput(5_000.0) < throughput(0.0) * 0.5


class TestDistributedLockFreeRoute:
    def test_partitioned_clock_hits_need_no_lock(self, tiny_machine):
        from repro.core.bpwrapper import ThreadSlot
        from repro.harness.distributed import build_distributed_system
        from repro.simcore.cpu import CpuBoundThread, ProcessorPool

        sim = Simulator()
        build = build_distributed_system(sim, 64, tiny_machine,
                                         policy_name="clock")
        manager = build.manager
        pages = [PageId("t", block) for block in range(16)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=8)

        def body():
            for page in pages:
                yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        assert build.handler.merged_lock_stats().acquisitions == 0


class TestDbt1BTree:
    def test_probe_walks_root_internal_leaf(self):
        from repro.workloads.dbt1 import DBT1Workload
        workload = DBT1Workload(seed=1, scale=0.2)
        path = workload._item_btree.probe(0.5)
        assert len(path) == 3
        assert path[0].block == 0                     # root
        assert 1 <= path[1].block <= 10               # internal
        assert path[2].block > 10                     # leaf

    def test_leaf_range_is_contiguous(self):
        from repro.workloads.dbt1 import DBT1Workload
        workload = DBT1Workload(seed=1, scale=0.2)
        pages = workload._item_btree.leaf_range(0.3, n_leaves=5)
        leaf_blocks = [page.block for page in pages[2:]]
        assert leaf_blocks == list(range(leaf_blocks[0],
                                         leaf_blocks[0] + len(leaf_blocks)))

    def test_too_small_index_rejected(self):
        from repro.db.relations import Relation
        from repro.workloads.dbt1 import _BTree
        with pytest.raises(WorkloadError):
            _BTree(Relation("idx", 5), fanout=10)


class TestAccessOrderedPrewarm:
    def test_prefix_is_distinct_and_access_ordered(self):
        from repro.harness.experiment import _access_ordered_prefix
        from repro.workloads.registry import make_workload
        workload = make_workload("dbt1", seed=2, scale=0.1)
        prefix = _access_ordered_prefix(workload, 100)
        assert len(prefix) == 100
        assert len(set(prefix)) == 100
        # The hottest page (item index root) appears early.
        assert PageId("item_idx", 0) in prefix[:40]


class TestSharedQueueDrops:
    def test_overflow_counted(self, tiny_machine):
        from repro.harness.systems import build_system
        from repro.core.bpwrapper import ThreadSlot
        from repro.simcore.cpu import CpuBoundThread, ProcessorPool

        sim = Simulator()
        build = build_system("pgBatShared", sim, 64, tiny_machine,
                             queue_size=1, batch_threshold=1)
        handler = build.handler
        manager = build.manager
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        # Saturate the shared queue directly, then hold the main lock
        # so the worker's commit attempt blocks while a second worker
        # arrives at a full queue and must drop its recording.
        desc0 = manager.lookup(pages[0])
        while not handler.shared_queue.full:
            handler.shared_queue.record(desc0, pages[0])
        pool = ProcessorPool(sim, 3, 0.0)
        holder = CpuBoundThread(pool, "holder")
        blocked_worker = CpuBoundThread(pool, "w1")
        late_worker = CpuBoundThread(pool, "w2")
        slot1 = ThreadSlot(blocked_worker, 0, queue_size=1)
        slot2 = ThreadSlot(late_worker, 1, queue_size=1)

        def holder_body():
            yield from build.lock.acquire(holder)
            yield from holder.run_for(1_000.0)
            build.lock.release(holder)

        def blocked_body():
            yield from blocked_worker.run_for(1.0)
            yield from manager.access(slot1, pages[0])

        def late_body():
            yield from late_worker.run_for(2.0)
            yield from manager.access(slot2, pages[1])

        holder.start(holder_body())
        blocked_worker.start(blocked_body())
        late_worker.start(late_body())
        sim.run()
        assert handler.dropped_records > 0
