"""Behavioural tests for W-TinyLFU and its count-min sketch."""

from __future__ import annotations

import random

import pytest

from repro.errors import PolicyError
from repro.policies.tinylfu import CountMinSketch, TinyLFUPolicy


def key(block: int) -> tuple:
    return ("t", block)


class TestCountMinSketch:
    def test_estimates_track_counts(self):
        sketch = CountMinSketch(64)
        for _ in range(5):
            sketch.increment("hot")
        sketch.increment("cold")
        assert sketch.estimate("hot") >= 5
        assert sketch.estimate("cold") >= 1
        assert sketch.estimate("hot") > sketch.estimate("cold")
        assert sketch.estimate("never") <= sketch.estimate("cold")

    def test_counters_saturate(self):
        sketch = CountMinSketch(8)
        for _ in range(100):
            sketch.increment("x")
        assert sketch.estimate("x") <= CountMinSketch.MAX_COUNT

    def test_aging_halves_counts(self):
        sketch = CountMinSketch(8)
        sketch.sample_period = 10
        for _ in range(9):
            sketch.increment("x")
        before = sketch.estimate("x")
        sketch.increment("x")  # triggers the reset
        assert sketch.estimate("x") <= (before + 1) // 2 + 1

    def test_estimate_never_negative_or_huge(self):
        sketch = CountMinSketch(32)
        rng = random.Random(1)
        for _ in range(2000):
            sketch.increment(("k", rng.randrange(500)))
        for block in range(500):
            estimate = sketch.estimate(("k", block))
            assert 0 <= estimate <= CountMinSketch.MAX_COUNT

    def test_validation(self):
        with pytest.raises(PolicyError):
            CountMinSketch(0)


class TestTinyLFU:
    def test_new_pages_enter_window(self):
        policy = TinyLFUPolicy(100)
        policy.on_miss(key(0))
        assert policy.segment_of(key(0)) == "window"

    def test_window_overflow_spills_to_probation_when_space(self):
        policy = TinyLFUPolicy(100)  # window = 1
        policy.on_miss(key(0))
        policy.on_miss(key(1))
        assert policy.segment_of(key(0)) == "probation"
        assert policy.segment_of(key(1)) == "window"

    def test_probation_hit_promotes_to_protected(self):
        policy = TinyLFUPolicy(100)
        policy.on_miss(key(0))
        policy.on_miss(key(1))       # 0 -> probation
        policy.on_hit(key(0))
        assert policy.segment_of(key(0)) == "protected"

    def test_admission_filter_rejects_cold_candidates(self):
        # Build a hot main area, then stream one-touch pages: the
        # filter must deny them admission (the TinyLFU design goal).
        policy = TinyLFUPolicy(20)
        hot = [key(block) for block in range(19)]
        for page in hot:
            policy.on_miss(page)
        rng = random.Random(3)
        for _ in range(300):
            policy.on_hit(hot[rng.randrange(19)])
        for block in range(1000, 1100):
            policy.access(key(block))
        assert policy.rejected_admissions > 50
        # The hot main-area pages survived the scan.
        still_resident = sum(1 for page in hot if page in policy)
        assert still_resident >= 15

    def test_admission_filter_admits_proven_hot_returner(self):
        policy = TinyLFUPolicy(10)
        returner = key(999)
        # Make the returner's sketch frequency high via repeated misses
        # and evictions (frequency survives eviction — the whole point
        # of keeping history in a sketch, not in the cache).
        for round_index in range(6):
            policy.access(returner)
            for block in range(20):
                policy.access(key(block))
        policy.access(returner)
        assert returner in policy

    def test_scan_resistance_vs_lru(self):
        from repro.policies.lru import LRUPolicy
        rng = random.Random(9)
        tiny = TinyLFUPolicy(30)
        lru = LRUPolicy(30)
        tiny_hits = lru_hits = 0
        scan_block = 10_000
        for step in range(6000):
            if step % 3 == 0:
                page = ("scan", scan_block)
                scan_block += 1
            else:
                page = key(rng.randrange(20))
            tiny_hits += tiny.access(page).hit
            lru_hits += lru.access(page).hit
        assert tiny_hits > lru_hits

    def test_works_under_bp_wrapper(self):
        from repro.harness.experiment import ExperimentConfig, run_experiment
        config = ExperimentConfig(
            system="pgBatPre", workload="dbt1",
            workload_kwargs={"scale": 0.1}, n_processors=8,
            policy_name="tinylfu", target_accesses=10_000, seed=11)
        result = run_experiment(config)
        assert result.hit_ratio == pytest.approx(1.0)
        assert result.contention_per_million < 10_000

    def test_validation(self):
        with pytest.raises(PolicyError):
            TinyLFUPolicy(10, window_fraction=0.0)
