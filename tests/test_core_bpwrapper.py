"""Tests for BP-Wrapper: config, FIFO queue, and the Fig. 4 protocol."""

from __future__ import annotations

import pytest

from repro.bufmgr.descriptors import BufferDesc
from repro.bufmgr.manager import BufferManager
from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import (BatchedHandler, DirectHandler,
                                  LockFreeHitHandler, ThreadSlot)
from repro.core.config import BPConfig
from repro.core.fifoqueue import AccessQueue
from repro.errors import ConfigError
from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.policies.clock import ClockPolicy
from repro.policies.lru import LRUPolicy
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator
from repro.sync.locks import SimLock


class TestBPConfig:
    def test_paper_defaults(self):
        config = BPConfig()
        assert config.queue_size == 64
        assert config.batch_threshold == 32

    def test_threshold_cannot_exceed_queue(self):
        with pytest.raises(ConfigError):
            BPConfig(queue_size=8, batch_threshold=9)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            BPConfig(queue_size=0)
        with pytest.raises(ConfigError):
            BPConfig(batch_threshold=0)

    def test_named_constructors(self):
        assert not BPConfig.baseline().batching
        assert not BPConfig.baseline().prefetching
        assert BPConfig.batching_only().batching
        assert not BPConfig.batching_only().prefetching
        assert not BPConfig.prefetching_only().batching
        assert BPConfig.prefetching_only().prefetching
        assert BPConfig.full().batching and BPConfig.full().prefetching

    def test_with_params(self):
        config = BPConfig.full().with_params(queue_size=16,
                                             batch_threshold=8)
        assert config.queue_size == 16
        assert config.batching


class TestAccessQueue:
    def make_entry(self, block: int):
        desc = BufferDesc(block)
        tag = PageId("t", block)
        desc.retag(tag)
        desc.valid = True
        return desc, tag

    def test_fifo_order_preserved(self):
        queue = AccessQueue(8)
        for block in range(5):
            queue.record(*self.make_entry(block))
        drained = queue.drain()
        assert [entry.tag.block for entry in drained] == [0, 1, 2, 3, 4]
        assert len(queue) == 0

    def test_overflow_rejected(self):
        queue = AccessQueue(2)
        queue.record(*self.make_entry(0))
        queue.record(*self.make_entry(1))
        assert queue.full
        with pytest.raises(ConfigError):
            queue.record(*self.make_entry(2))

    def test_batch_accounting(self):
        queue = AccessQueue(8)
        for block in range(6):
            queue.record(*self.make_entry(block))
        queue.drain()
        for block in range(2):
            queue.record(*self.make_entry(block))
        queue.drain()
        assert queue.commits == 2
        assert queue.total_committed == 8
        assert queue.mean_batch_size() == pytest.approx(4.0)

    def test_peek_does_not_drain(self):
        queue = AccessQueue(4)
        queue.record(*self.make_entry(0))
        assert len(queue.peek()) == 1
        assert len(queue) == 1

    def test_stale_drops_excluded_from_committed(self):
        # Regression: drain() counts what *left* the queue, but entries
        # the committer drops as stale never reach the algorithm and
        # must not count as committed (they used to, overstating
        # mean_batch_size).
        queue = AccessQueue(8)
        for block in range(4):
            queue.record(*self.make_entry(block))
        queue.drain()
        queue.note_stale()
        assert queue.total_drained == 4
        assert queue.total_stale == 1
        assert queue.total_committed == 3
        assert queue.mean_batch_size() == pytest.approx(3.0)

    def test_note_stale_rejects_negative(self):
        queue = AccessQueue(4)
        queue.record(*self.make_entry(0))
        queue.drain()
        with pytest.raises(ConfigError):
            queue.note_stale(-1)

    def test_note_stale_cannot_exceed_drained(self):
        queue = AccessQueue(4)
        queue.record(*self.make_entry(0))
        queue.drain()
        queue.note_stale()
        with pytest.raises(ConfigError):
            queue.note_stale()


def wrapper_rig(sim, capacity=16, queue_size=4, batch_threshold=2,
                prefetching=False, policy_cls=LRUPolicy):
    costs = CostModel(user_work_us=1.0, context_switch_us=0.5)
    policy = policy_cls(capacity)
    lock = SimLock(sim, grant_cost_us=costs.lock_grant_us,
                   try_cost_us=costs.try_lock_us)
    cache = MetadataCacheModel(costs)
    config = BPConfig(batching=True, prefetching=prefetching,
                      queue_size=queue_size,
                      batch_threshold=batch_threshold)
    handler = BatchedHandler(policy, lock, cache, costs, config)
    manager = BufferManager(sim, capacity, policy, handler, costs)
    return manager, policy, lock, handler


class TestBatchedProtocol:
    def test_hits_deferred_until_threshold(self, sim):
        manager, policy, lock, _ = wrapper_rig(sim, batch_threshold=3,
                                               queue_size=8)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=8)
        order_snapshots = []

        def body():
            for page in pages[:3]:
                yield from manager.access(slot, page)
                order_snapshots.append(
                    (len(slot.queue), lock.stats.acquisitions))

        thread.start(body())
        sim.run()
        # First two hits only recorded; the third triggers TryLock
        # (free lock) and commits all three at once.
        assert order_snapshots[0] == (1, 0)
        assert order_snapshots[1] == (2, 0)
        assert order_snapshots[2] == (0, 1)
        assert slot.queue.total_committed == 3

    def test_commit_preserves_thread_access_order(self, sim):
        manager, policy, _, _ = wrapper_rig(sim, batch_threshold=4,
                                            queue_size=4)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=4)

        def body():
            for page in (pages[5], pages[1], pages[7], pages[2]):
                yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        # After the batch commit, LRU order must reflect the thread's
        # exact access order: 5, 1, 7, 2 most recent last.
        order = list(policy.lru_order())
        assert order[-4:] == [pages[5], pages[1], pages[7], pages[2]]

    def test_miss_commits_queue_first(self, sim):
        manager, policy, lock, _ = wrapper_rig(sim, batch_threshold=8,
                                               queue_size=8, capacity=4)
        resident = [PageId("t", block) for block in range(4)]
        manager.warm_with(resident)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=8)

        def body():
            # Two hits (deferred), then a miss: the miss's Lock() must
            # replay the hits before choosing a victim, so the victim
            # is page 2 (the only non-recent resident).
            yield from manager.access(slot, resident[0])
            yield from manager.access(slot, resident[1])
            yield from manager.access(slot, resident[3])
            yield from manager.access(slot, PageId("t", 99))

        thread.start(body())
        sim.run()
        assert PageId("t", 2) not in policy
        for page in (resident[0], resident[1], resident[3]):
            assert page in policy
        assert slot.queue.total_committed == 3

    def test_stale_entry_dropped_by_tag_check(self, sim):
        manager, policy, _, _ = wrapper_rig(sim, batch_threshold=8,
                                            queue_size=8, capacity=4)
        pages = [PageId("t", block) for block in range(4)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=8)

        def body():
            yield from manager.access(slot, pages[0])   # queued hit
            # Page 0 is invalidated (e.g. table dropped) before commit.
            manager.invalidate(pages[0])
            yield from manager.access(slot, PageId("t", 50))  # miss

        thread.start(body())
        sim.run()
        assert slot.stale_entries == 1
        assert pages[0] not in policy
        # Reconciliation: the slot's stale counter IS the queue's (one
        # source of truth), and the stale drop is excluded from the
        # committed-batch accounting. The miss-path commit drained one
        # entry (the stale hit on page 0) and committed none of it.
        assert slot.stale_entries == slot.queue.total_stale
        assert slot.queue.total_drained == 1
        assert slot.queue.total_committed == 0
        assert slot.queue.mean_batch_size() == 0.0

    def test_queue_full_forces_blocking_lock(self, sim):
        # Hold the lock from another thread so TryLock always fails;
        # the wrapper must block exactly when the queue fills.
        manager, policy, lock, _ = wrapper_rig(sim, batch_threshold=2,
                                               queue_size=4)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 2, 0.0)
        holder = CpuBoundThread(pool, "holder")
        worker = CpuBoundThread(pool, "worker")
        slot = ThreadSlot(worker, 0, queue_size=4)
        queue_depths = []

        def holder_body():
            yield from lock.acquire(holder)
            yield from holder.run_for(100.0)
            lock.release(holder)

        def worker_body():
            yield from worker.run_for(1.0)
            for page in pages[:4]:
                yield from manager.access(slot, page)
                queue_depths.append(len(slot.queue))

        holder.start(holder_body())
        worker.start(worker_body())
        sim.run()
        # Hits 1-2: below/at threshold with failed TryLock -> deferred;
        # hit 3: deferred (queue not full); hit 4: queue full -> Lock()
        # blocks until the holder releases, then commits all four.
        assert queue_depths == [1, 2, 3, 0]
        assert lock.stats.contentions == 1
        assert slot.queue.total_committed == 4
        assert lock.stats.try_failures >= 2

    def test_threshold_equals_queue_size_commits_on_fill(self, sim):
        # Degenerate corner: batch_threshold == queue_size. The
        # threshold check (Fig. 4 line 7) fires exactly when the queue
        # fills, so the TryLock and the queue-full fallback coincide.
        # With a free lock, the fill-point TryLock must commit all
        # entries in one acquisition — no overflow, no deadlock.
        manager, policy, lock, _ = wrapper_rig(sim, batch_threshold=4,
                                               queue_size=4)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=4)
        queue_depths = []

        def body():
            for page in pages[:4]:
                yield from manager.access(slot, page)
                queue_depths.append(len(slot.queue))

        thread.start(body())
        sim.run()
        assert queue_depths == [1, 2, 3, 0]
        assert lock.stats.acquisitions == 1
        assert slot.queue.total_committed == 4
        assert slot.queue.mean_batch_size() == pytest.approx(4.0)

    def test_threshold_equals_queue_size_blocks_when_lock_held(self, sim):
        # Same corner under contention: the fill-point TryLock fails
        # and the queue is already full, so the thread must fall
        # through to the blocking Lock() (Fig. 4 line 13) in the SAME
        # access — deferring again would overflow the queue.
        manager, policy, lock, _ = wrapper_rig(sim, batch_threshold=4,
                                               queue_size=4)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 2, 0.0)
        holder = CpuBoundThread(pool, "holder")
        worker = CpuBoundThread(pool, "worker")
        slot = ThreadSlot(worker, 0, queue_size=4)
        queue_depths = []

        def holder_body():
            yield from lock.acquire(holder)
            yield from holder.run_for(100.0)
            lock.release(holder)

        def worker_body():
            yield from worker.run_for(1.0)
            for page in pages[:4]:
                yield from manager.access(slot, page)
                queue_depths.append(len(slot.queue))

        holder.start(holder_body())
        worker.start(worker_body())
        sim.run()
        assert queue_depths == [1, 2, 3, 0]
        assert lock.stats.try_failures == 1
        assert lock.stats.contentions == 1
        assert slot.queue.total_committed == 4

    def test_batch_size_one_behaves_like_direct(self, sim):
        # queue_size=1, threshold=1: every hit commits immediately.
        manager, policy, lock, _ = wrapper_rig(sim, batch_threshold=1,
                                               queue_size=1)
        pages = [PageId("t", block) for block in range(4)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=1)

        def body():
            for page in pages:
                yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        assert lock.stats.acquisitions == 4
        assert slot.queue.commits == 4
        assert list(policy.lru_order()) == pages


class TestDirectAndLockFree:
    def test_direct_acquires_per_hit(self, sim):
        costs = CostModel(user_work_us=1.0)
        policy = LRUPolicy(8)
        lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
        cache = MetadataCacheModel(costs)
        handler = DirectHandler(policy, lock, cache, costs,
                                BPConfig.baseline())
        manager = BufferManager(sim, 8, policy, handler, costs)
        pages = [PageId("t", block) for block in range(5)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=64)

        def body():
            for page in pages:
                yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        assert lock.stats.acquisitions == 5

    def test_lock_free_hits_never_touch_lock(self, sim):
        costs = CostModel(user_work_us=1.0)
        policy = ClockPolicy(8)
        lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
        cache = MetadataCacheModel(costs)
        handler = LockFreeHitHandler(policy, lock, cache, costs,
                                     BPConfig.baseline())
        manager = BufferManager(sim, 8, policy, handler, costs)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=64)

        def body():
            for _ in range(3):
                for page in pages:
                    yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        assert lock.stats.acquisitions == 0
        assert lock.stats.requests == 0
        # The hits still updated the policy (reference bits set).
        assert all(policy.reference_bit(page) for page in pages)

    def test_lock_free_misses_do_lock(self, sim):
        costs = CostModel(user_work_us=1.0)
        policy = ClockPolicy(4)
        lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
        cache = MetadataCacheModel(costs)
        handler = LockFreeHitHandler(policy, lock, cache, costs,
                                     BPConfig.baseline())
        manager = BufferManager(sim, 4, policy, handler, costs)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=64)

        def body():
            for block in range(6):
                yield from manager.access(slot, PageId("t", block))

        thread.start(body())
        sim.run()
        assert lock.stats.acquisitions == 6


class TestPrefetching:
    def test_prefetch_issued_before_lock(self, sim):
        manager, policy, lock, handler = wrapper_rig(
            sim, batch_threshold=2, queue_size=4, prefetching=True)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=4)

        def body():
            for page in pages[:4]:
                yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        cache = handler.cache
        assert cache.prefetches_issued >= 1
        assert cache.prefetches_valid_at_use >= 1
