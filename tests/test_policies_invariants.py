"""Property-based structural invariants for the complex policies.

The common contract suite checks observable behaviour; these tests
open the hood and assert the *internal* invariants each algorithm's
correctness argument rests on, under hypothesis-generated traces.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolicyError
from repro.policies.arc import ARCPolicy
from repro.policies.car import CARPolicy
from repro.policies.clockpro import ClockProPolicy
from repro.policies.lirs import LIRSPolicy
from repro.policies.mq import MQPolicy
from repro.policies.registry import make_policy
from repro.policies.twoq import TwoQPolicy

traces = st.lists(st.integers(min_value=0, max_value=50),
                  min_size=1, max_size=500)
capacities = st.integers(min_value=2, max_value=16)


def drive(policy, trace):
    for block in trace:
        policy.access(("s", block))


class TestARCInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_megiddo_modha_invariants(self, trace, capacity):
        arc = ARCPolicy(capacity)
        for block in trace:
            arc.access(("s", block))
            t1 = len(list(arc.t1_keys))
            t2 = len(list(arc.t2_keys))
            b1 = len(list(arc.b1_keys))
            b2 = len(list(arc.b2_keys))
            # I1: resident pages never exceed c.
            assert t1 + t2 <= capacity
            # I2: T1 u B1 never exceeds c.
            assert t1 + b1 <= capacity
            # I3: all four lists never exceed 2c.
            assert t1 + t2 + b1 + b2 <= 2 * capacity
            # I4: the adaptation target stays within [0, c].
            assert 0.0 <= arc.p <= capacity
            # I5: the four lists are disjoint.
            every = (list(arc.t1_keys) + list(arc.t2_keys)
                     + list(arc.b1_keys) + list(arc.b2_keys))
            assert len(every) == len(set(every))


class TestCARInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_car_invariants(self, trace, capacity):
        car = CARPolicy(capacity)
        for block in trace:
            car.access(("s", block))
            t1 = len(car._t1)
            t2 = len(car._t2)
            b1 = len(car._b1)
            b2 = len(car._b2)
            assert t1 + t2 <= capacity
            assert t1 + b1 <= capacity
            assert t1 + t2 + b1 + b2 <= 2 * capacity
            assert 0.0 <= car.p <= capacity
            # Every resident page has a reference bit entry and
            # belongs to exactly one clock.
            assert set(car._ref) == set(car._t1) | set(car._t2)
            assert not (set(car._t1) & set(car._t2))


class TestLIRSInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_lirs_invariants(self, trace, capacity):
        lirs = LIRSPolicy(capacity)
        for block in trace:
            lirs.access(("s", block))
            # Stack bottom, if any, is always LIR (pruning invariant).
            if lirs._stack:
                first_state = next(iter(lirs._stack.values()))
                assert first_state == "LIR"
            # LIR pages never exceed their allotment.
            assert lirs.lir_count <= lirs.lir_capacity
            # Ghosts stay bounded.
            assert lirs.ghost_count <= lirs.max_ghosts
            # Residency arithmetic.
            assert (lirs.lir_count + len(lirs._queue)
                    == lirs.resident_count)
            assert lirs.resident_count <= capacity


class TestClockProInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_clockpro_invariants(self, trace, capacity):
        cpro = ClockProPolicy(capacity)
        for block in trace:
            cpro.access(("s", block))
            assert cpro.hot_count + cpro.cold_count <= capacity
            assert cpro.ghost_count <= capacity + 1
            assert 1 <= cpro.cold_target <= capacity
            # The ring is consistent: every node reachable, counts add
            # up.
            statuses = [node.status for node in cpro._nodes.values()]
            assert statuses.count("hot") == cpro.hot_count
            assert statuses.count("cold") == cpro.cold_count
            assert statuses.count("ghost") == cpro.ghost_count

    @settings(max_examples=20, deadline=None)
    @given(traces, capacities)
    def test_ring_links_consistent(self, trace, capacity):
        cpro = ClockProPolicy(capacity)
        drive(cpro, trace)
        nodes = list(cpro._nodes.values())
        if not nodes:
            return
        # Walk the ring from any node: it must visit every node exactly
        # once before returning.
        start = nodes[0]
        seen = set()
        node = start
        for _ in range(len(nodes) + 1):
            assert id(node) not in seen, "ring has a short cycle"
            seen.add(id(node))
            node = node.next
            if node is start:
                break
        assert len(seen) == len(nodes)


class TestMQInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_mq_invariants(self, trace, capacity):
        mq = MQPolicy(capacity, n_queues=4)
        for block in trace:
            mq.access(("s", block))
            # Each resident page is in exactly the queue its metadata
            # says, and queues partition the resident set.
            total = 0
            for index, queue in enumerate(mq._queues):
                for key in queue:
                    assert mq._meta[key].queue == index
                total += len(queue)
            assert total == mq.resident_count <= capacity
            assert len(mq._qout) <= mq.qout_capacity


class Test2QInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_2q_invariants(self, trace, capacity):
        twoq = TwoQPolicy(capacity)
        for block in trace:
            twoq.access(("s", block))
            a1in = set(twoq.a1in_keys)
            am = set(twoq.am_keys)
            ghosts = set(twoq.a1out_keys)
            # Resident lists are disjoint; ghosts overlap neither.
            assert not (a1in & am)
            assert not (ghosts & (a1in | am))
            assert len(a1in) + len(am) <= capacity
            assert len(ghosts) <= twoq.kout


#: Policies whose check_invariants() extends the base contract with
#: structural rules (the set the CorrectnessChecker sweep exercises).
STRUCTURAL_POLICIES = ["2q", "arc", "lirs", "mq", "lruk", "car",
                       "clockpro", "tinylfu"]


class TestCheckInvariantsHook:
    """The check_invariants() hook itself: clean states pass, corrupt
    states raise — for every policy with structural rules."""

    @pytest.mark.parametrize("name", STRUCTURAL_POLICIES)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_clean_under_random_trace(self, name, seed):
        """Random accesses + pins + invalidations never trip the check."""
        rng = random.Random(seed)
        capacity = rng.choice([4, 9, 16])
        policy = make_policy(name, capacity)
        pinned = set()
        policy.set_evictable_predicate(lambda key: key not in pinned)
        universe = [("s", block) for block in range(capacity * 4)]
        for _ in range(1500):
            key = rng.choice(universe)
            if rng.random() < 0.15 and len(pinned) < max(1, capacity // 2):
                resident = list(policy.resident_keys())
                if resident:
                    pinned.add(rng.choice(resident))
            if rng.random() < 0.15 and pinned:
                pinned.discard(rng.choice(sorted(pinned)))
            pinned &= set(policy.resident_keys())
            try:
                if key in policy:
                    policy.on_hit(key)
                else:
                    policy.on_miss(key)
            except PolicyError as exc:
                assert "no evictable" in str(exc)
                continue
            if rng.random() < 0.05:
                evictable = [k for k in policy.resident_keys()
                             if k not in pinned]
                if evictable:
                    policy.on_remove(rng.choice(evictable))
            policy.check_invariants()

    def _warm(self, name, capacity=8):
        policy = make_policy(name, capacity)
        rng = random.Random(7)
        for _ in range(200):
            policy.access(("s", rng.randrange(capacity * 3)))
        policy.check_invariants()
        return policy

    def test_mq_detects_queue_meta_divergence(self):
        mq = self._warm("mq")
        key = next(iter(mq._meta))
        mq._meta[key].queue = (mq._meta[key].queue + 1) % mq.n_queues
        with pytest.raises(PolicyError, match="mq"):
            mq.check_invariants()

    def test_mq_detects_resident_ghost(self):
        mq = self._warm("mq")
        mq._qout[next(iter(mq._meta))] = 1
        with pytest.raises(PolicyError, match="still resident"):
            mq.check_invariants()

    def test_lruk_detects_unordered_stamps(self):
        lruk = self._warm("lruk")
        victim = next(key for key, h in lruk._resident.items()
                      if len(h.stamps) >= 2)
        lruk._resident[victim].stamps.reverse()
        with pytest.raises(PolicyError, match="decreasing"):
            lruk.check_invariants()

    def test_lruk_detects_overlong_history(self):
        lruk = self._warm("lruk")
        history = next(iter(lruk._resident.values()))
        history.stamps = list(range(lruk.k + 1, 0, -1))
        with pytest.raises(PolicyError, match="stamps"):
            lruk.check_invariants()

    def test_car_detects_clockless_resident(self):
        car = self._warm("car")
        key = next(iter(car._t1), None) or next(iter(car._t2))
        if key in car._t1:
            del car._t1[key]
        else:
            del car._t2[key]
        with pytest.raises(PolicyError, match="divergence"):
            car.check_invariants()

    def test_car_detects_resident_ghost(self):
        car = self._warm("car")
        car._b1[next(iter(car._ref))] = None
        with pytest.raises(PolicyError, match="ghost"):
            car.check_invariants()

    def test_clockpro_detects_counter_drift(self):
        cpro = self._warm("clockpro")
        cpro._hot_count += 1
        cpro._cold_count -= 1
        with pytest.raises(PolicyError, match="census"):
            cpro.check_invariants()

    def test_clockpro_detects_broken_ring(self):
        cpro = self._warm("clockpro")
        node = next(iter(cpro._nodes.values()))
        node.next.prev = node.next  # sever the back link
        with pytest.raises(PolicyError, match="ring"):
            cpro.check_invariants()

    def test_tinylfu_detects_segment_overlap(self):
        tiny = self._warm("tinylfu", capacity=32)
        key = next(iter(tiny._probation), None)
        assert key is not None, "warm trace should populate probation"
        tiny._window[key] = None
        # The base duplicate check or the segment-overlap check may
        # fire first; either way the corruption is caught.
        with pytest.raises(PolicyError, match="duplicates|segment"):
            tiny.check_invariants()

    def test_tinylfu_detects_protected_overflow(self):
        tiny = self._warm("tinylfu", capacity=32)
        # Shift resident pages between segments (residency unchanged)
        # until the protected segment exceeds its share.
        while len(tiny._protected) <= tiny.protected_capacity:
            source = tiny._probation or tiny._window
            key, _ = source.popitem(last=False)
            tiny._protected[key] = None
        with pytest.raises(PolicyError, match="protected"):
            tiny.check_invariants()
