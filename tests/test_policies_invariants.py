"""Property-based structural invariants for the complex policies.

The common contract suite checks observable behaviour; these tests
open the hood and assert the *internal* invariants each algorithm's
correctness argument rests on, under hypothesis-generated traces.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.policies.arc import ARCPolicy
from repro.policies.car import CARPolicy
from repro.policies.clockpro import ClockProPolicy
from repro.policies.lirs import LIRSPolicy
from repro.policies.mq import MQPolicy
from repro.policies.twoq import TwoQPolicy

traces = st.lists(st.integers(min_value=0, max_value=50),
                  min_size=1, max_size=500)
capacities = st.integers(min_value=2, max_value=16)


def drive(policy, trace):
    for block in trace:
        policy.access(("s", block))


class TestARCInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_megiddo_modha_invariants(self, trace, capacity):
        arc = ARCPolicy(capacity)
        for block in trace:
            arc.access(("s", block))
            t1 = len(list(arc.t1_keys))
            t2 = len(list(arc.t2_keys))
            b1 = len(list(arc.b1_keys))
            b2 = len(list(arc.b2_keys))
            # I1: resident pages never exceed c.
            assert t1 + t2 <= capacity
            # I2: T1 u B1 never exceeds c.
            assert t1 + b1 <= capacity
            # I3: all four lists never exceed 2c.
            assert t1 + t2 + b1 + b2 <= 2 * capacity
            # I4: the adaptation target stays within [0, c].
            assert 0.0 <= arc.p <= capacity
            # I5: the four lists are disjoint.
            every = (list(arc.t1_keys) + list(arc.t2_keys)
                     + list(arc.b1_keys) + list(arc.b2_keys))
            assert len(every) == len(set(every))


class TestCARInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_car_invariants(self, trace, capacity):
        car = CARPolicy(capacity)
        for block in trace:
            car.access(("s", block))
            t1 = len(car._t1)
            t2 = len(car._t2)
            b1 = len(car._b1)
            b2 = len(car._b2)
            assert t1 + t2 <= capacity
            assert t1 + b1 <= capacity
            assert t1 + t2 + b1 + b2 <= 2 * capacity
            assert 0.0 <= car.p <= capacity
            # Every resident page has a reference bit entry and
            # belongs to exactly one clock.
            assert set(car._ref) == set(car._t1) | set(car._t2)
            assert not (set(car._t1) & set(car._t2))


class TestLIRSInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_lirs_invariants(self, trace, capacity):
        lirs = LIRSPolicy(capacity)
        for block in trace:
            lirs.access(("s", block))
            # Stack bottom, if any, is always LIR (pruning invariant).
            if lirs._stack:
                first_state = next(iter(lirs._stack.values()))
                assert first_state == "LIR"
            # LIR pages never exceed their allotment.
            assert lirs.lir_count <= lirs.lir_capacity
            # Ghosts stay bounded.
            assert lirs.ghost_count <= lirs.max_ghosts
            # Residency arithmetic.
            assert (lirs.lir_count + len(lirs._queue)
                    == lirs.resident_count)
            assert lirs.resident_count <= capacity


class TestClockProInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_clockpro_invariants(self, trace, capacity):
        cpro = ClockProPolicy(capacity)
        for block in trace:
            cpro.access(("s", block))
            assert cpro.hot_count + cpro.cold_count <= capacity
            assert cpro.ghost_count <= capacity + 1
            assert 1 <= cpro.cold_target <= capacity
            # The ring is consistent: every node reachable, counts add
            # up.
            statuses = [node.status for node in cpro._nodes.values()]
            assert statuses.count("hot") == cpro.hot_count
            assert statuses.count("cold") == cpro.cold_count
            assert statuses.count("ghost") == cpro.ghost_count

    @settings(max_examples=20, deadline=None)
    @given(traces, capacities)
    def test_ring_links_consistent(self, trace, capacity):
        cpro = ClockProPolicy(capacity)
        drive(cpro, trace)
        nodes = list(cpro._nodes.values())
        if not nodes:
            return
        # Walk the ring from any node: it must visit every node exactly
        # once before returning.
        start = nodes[0]
        seen = set()
        node = start
        for _ in range(len(nodes) + 1):
            assert id(node) not in seen, "ring has a short cycle"
            seen.add(id(node))
            node = node.next
            if node is start:
                break
        assert len(seen) == len(nodes)


class TestMQInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_mq_invariants(self, trace, capacity):
        mq = MQPolicy(capacity, n_queues=4)
        for block in trace:
            mq.access(("s", block))
            # Each resident page is in exactly the queue its metadata
            # says, and queues partition the resident set.
            total = 0
            for index, queue in enumerate(mq._queues):
                for key in queue:
                    assert mq._meta[key].queue == index
                total += len(queue)
            assert total == mq.resident_count <= capacity
            assert len(mq._qout) <= mq.qout_capacity


class Test2QInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces, capacities)
    def test_2q_invariants(self, trace, capacity):
        twoq = TwoQPolicy(capacity)
        for block in trace:
            twoq.access(("s", block))
            a1in = set(twoq.a1in_keys)
            am = set(twoq.am_keys)
            ghosts = set(twoq.a1out_keys)
            # Resident lists are disjoint; ghosts overlap neither.
            assert not (a1in & am)
            assert not (ghosts & (a1in | am))
            assert len(a1in) + len(am) <= capacity
            assert len(ghosts) <= twoq.kout
