"""Observability layer: tracing, metrics, and the zero-cost guarantee.

Three properties are load-bearing enough to pin down here:

* the Chrome trace export is schema-valid and **byte-identical** across
  runs with the same seed (the export may land in dashboards/CI
  artifacts — nondeterminism there poisons diffing);
* histogram bucket counts always sum to the observation count, and the
  hold-time histogram's count equals the lock's acquisition count;
* with no observer attached the simulator's behaviour — results,
  timestamps, allocations on the spend fast path — is exactly the
  uninstrumented engine's.
"""

import json

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.obs import Histogram, MetricsRegistry, Observer, TraceRecorder
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.cpu import _NO_EVENTS
from repro.simcore.engine import Simulator
from repro.sync.locks import SimLock
from repro.sync.stats import LockStats

#: A tiny but contended configuration: the direct per-hit lock on 8
#: processors produces waits, holds, and context switches in a run
#: that takes well under a second.
_SMALL = ExperimentConfig(system="pg2Q", workload="tablescan",
                          workload_kwargs={"n_tables": 4,
                                           "pages_per_table": 50},
                          n_processors=8, n_threads=8,
                          target_accesses=3_000, seed=7)


def _observed_run(config=_SMALL, ring_capacity=None):
    observer = Observer(trace=TraceRecorder(ring_capacity=ring_capacity),
                        metrics=MetricsRegistry())
    result = run_experiment(config, observer=observer)
    return observer, result


class TestHistogram:
    def test_bucket_counts_sum_to_count(self):
        hist = Histogram()
        values = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 100.0, 1e6, 1e30, -1.0]
        for value in values:
            hist.record(value)
        assert sum(hist.bucket_counts()) == hist.count == len(values)

    def test_bucket_edges(self):
        hist = Histogram()
        hist.record(1.0)    # bucket 0: [0, 1]
        hist.record(2.0)    # bucket 1: (1, 2]
        hist.record(2.001)  # bucket 2: (2, 4]
        counts = hist.bucket_counts()
        assert counts[0] == 1 and counts[1] == 1 and counts[2] == 1

    def test_overflow_clamps_to_last_bucket(self):
        hist = Histogram()
        hist.record(float("inf"))
        assert hist.bucket_counts()[-1] == 1
        assert sum(hist.bucket_counts()) == 1

    def test_percentile_upper_bound(self):
        hist = Histogram()
        for _ in range(99):
            hist.record(1.5)      # bucket 1, upper bound 2
        hist.record(1000.0)       # bucket 10, upper bound 1024
        assert hist.percentile(0.5) == 2.0
        assert hist.percentile(0.99) == 2.0
        assert hist.percentile(1.0) == 1024.0

    def test_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.0)
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_mean_and_extrema(self):
        hist = Histogram()
        hist.record(2.0)
        hist.record(4.0)
        assert hist.mean() == pytest.approx(3.0)
        assert hist.min_value == 2.0 and hist.max_value == 4.0

    def test_to_dict_sparse_buckets(self):
        hist = Histogram()
        hist.record(3.0)
        record = hist.to_dict()
        assert record["count"] == 1
        assert record["buckets"] == {"2": 1}


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_gauge_tracks_peak(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1 and gauge.max_value == 3

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").record(5.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1
        assert json.loads(json.dumps(snap)) == snap  # JSON-clean


class TestLockInstrumentation:
    def _contended_sim(self, observer):
        sim = Simulator()
        sim.observer = observer
        pool = ProcessorPool(sim, 2, context_switch_us=1.0)
        lock = SimLock(sim, name="L", grant_cost_us=0.1)

        def body(thread):
            for _ in range(10):
                yield from lock.acquire(thread)
                yield from thread.run_for(5.0)
                lock.release(thread)

        for index in range(4):
            thread = CpuBoundThread(pool, name=f"t{index}")
            thread.start(body(thread))
        sim.run()
        return lock

    def test_hold_histogram_matches_acquisitions(self):
        observer = Observer(metrics=MetricsRegistry())
        lock = self._contended_sim(observer)
        hold = observer.metrics.histogram("lock.L.hold_us")
        assert hold.count == lock.stats.acquisitions == 40
        assert sum(hold.bucket_counts()) == hold.count

    def test_wait_histogram_matches_contentions(self):
        observer = Observer(metrics=MetricsRegistry())
        lock = self._contended_sim(observer)
        wait = observer.metrics.histogram("lock.L.wait_us")
        assert wait.count == lock.stats.contentions > 0

    def test_trace_spans_cover_hold_time(self):
        observer = Observer(trace=TraceRecorder())
        lock = self._contended_sim(observer)
        totals = observer.trace.aggregate_spans()
        holds = totals[("lock", "hold:L")]
        assert holds["count"] == lock.stats.acquisitions
        assert holds["total_us"] == pytest.approx(
            lock.stats.total_hold_us)


class TestChromeExport:
    def test_schema_valid(self):
        observer, _ = _observed_run()
        document = observer.trace.to_chrome()
        events = document["traceEvents"]
        assert events, "an observed contended run must produce events"
        tids = set()
        for event in events:
            assert event["ph"] in ("M", "X", "i", "C")
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)
            tids.add(event["tid"])
            if event["ph"] == "M":
                assert event["name"] == "thread_name"
                continue
            assert isinstance(event["ts"], float)
            assert event["ts"] >= 0.0
            assert event["name"] and event["cat"]
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"
        named = {e["tid"] for e in events if e["ph"] == "M"}
        assert named == tids  # every timeline row is labelled

    def test_export_deterministic_across_runs(self, tmp_path):
        first, _ = _observed_run()
        second, _ = _observed_run()
        path_a = first.trace.write_json(tmp_path / "a.json")
        path_b = second.trace.write_json(tmp_path / "b.json")
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_expected_span_kinds_present(self):
        observer, _ = _observed_run()
        kinds = set(observer.trace.aggregate_spans())
        assert ("lock", "hold:replacement-pg2Q") in kinds
        assert ("lock", "wait:replacement-pg2Q") in kinds
        assert ("sched", "blocked") in kinds

    def test_batched_system_records_batch_commits(self):
        observer, result = _observed_run(
            _SMALL.with_params(system="pgBatPre"))
        kinds = observer.trace.aggregate_spans()
        assert ("bpwrapper", "batch-commit") in kinds
        snap = result.metrics
        batch_histograms = [name for name in snap["histograms"]
                            if ".batch_size" in name]
        assert batch_histograms, "per-thread batch-size distributions"
        total = sum(snap["histograms"][name]["count"]
                    for name in batch_histograms)
        assert total == kinds[("bpwrapper", "batch-commit")]["count"]


class TestRingBuffer:
    def test_caps_memory_and_counts_drops(self):
        recorder = TraceRecorder(ring_capacity=100)
        for index in range(250):
            recorder.instant(f"e{index}", "test", "t0", float(index))
        assert len(recorder) == 100
        assert recorder.dropped == 150
        # The newest records survive.
        document = recorder.to_chrome()
        names = [e["name"] for e in document["traceEvents"]
                 if e["ph"] == "i"]
        assert names[0] == "e150" and names[-1] == "e249"
        assert document["otherData"]["dropped_records"] == 150

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(ring_capacity=0)


class TestZeroCostWhenDisabled:
    def test_simulator_observer_defaults_to_none(self):
        assert Simulator().observer is None

    def test_spend_fast_path_allocates_nothing(self):
        sim = Simulator()
        pool = ProcessorPool(sim, 1, context_switch_us=0.0)
        thread = CpuBoundThread(pool, name="t")
        # Zero-charge spend returns the shared module-level empty tuple
        # — same object every call, no allocation, no trace record.
        assert thread.spend() is _NO_EVENTS
        assert thread.spend() is _NO_EVENTS

    def test_disabled_run_records_nothing(self):
        # A recorder that exists but is not attached sees zero records.
        recorder = TraceRecorder()
        run_experiment(_SMALL)
        assert len(recorder) == 0 and recorder.dropped == 0

    def test_observed_run_equals_unobserved_run(self):
        _, observed = _observed_run()
        unobserved = run_experiment(_SMALL)
        observed_record = observed.to_dict()
        assert observed_record.pop("metrics") is not None
        assert unobserved.to_dict() == observed_record

    def test_observer_requires_a_sink(self):
        with pytest.raises(ValueError):
            Observer()


class TestWindowMaxHold:
    def test_delta_reports_window_max_not_lifetime_max(self):
        stats = LockStats()
        # Warm-up: one pathological 500µs hold.
        stats.acquisitions += 1
        stats.total_hold_us += 500.0
        stats.max_hold_us = 500.0
        stats.window_max_hold_us = 500.0
        snapshot = stats.copy()
        stats.begin_window()
        # Measured window: only 10µs holds.
        stats.acquisitions += 2
        stats.total_hold_us += 20.0
        stats.window_max_hold_us = 10.0
        delta = stats.delta_since(snapshot)
        assert delta.max_hold_us == 10.0
        assert stats.max_hold_us == 500.0  # lifetime max untouched

    def test_simlock_maintains_window_max(self):
        sim = Simulator()
        pool = ProcessorPool(sim, 1, context_switch_us=0.0)
        lock = SimLock(sim, name="L")
        thread = CpuBoundThread(pool, name="t")

        def body():
            yield from lock.acquire(thread)
            yield from thread.run_for(100.0)
            lock.release(thread)
            lock.stats.begin_window()
            yield from lock.acquire(thread)
            yield from thread.run_for(5.0)
            lock.release(thread)

        thread.start(body())
        sim.run()
        assert lock.stats.max_hold_us >= 100.0
        assert lock.stats.window_max_hold_us == pytest.approx(5.0)

    def test_merged_with_merges_window_max(self):
        a = LockStats(window_max_hold_us=3.0)
        b = LockStats(window_max_hold_us=8.0)
        assert a.merged_with(b).window_max_hold_us == 8.0

    def test_experiment_excludes_warmup_max(self):
        # With a warm-up window configured, the reported max hold must
        # be achievable within the measured window (<= lifetime max and
        # derived from post-warm-up holds only).
        result = run_experiment(_SMALL.with_params(warmup_fraction=0.3))
        assert result.lock_stats.max_hold_us > 0.0
        assert (result.lock_stats.max_hold_us
                <= result.lock_stats.total_hold_us)


class TestFlameSummary:
    def test_lists_top_span_kinds(self):
        observer, _ = _observed_run()
        summary = observer.trace.flame_summary(top=5)
        assert "hold:replacement-pg2Q" in summary
        assert "total_us" in summary

    def test_empty_trace(self):
        assert "no spans" in TraceRecorder().flame_summary()


class TestTraceCli:
    def test_trace_subcommand_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert cli_main(["trace", "--system", "pg2Q",
                         "--workload", "tablescan",
                         "--processors", "8",
                         "--accesses", "2000", "--seed", "7",
                         "--out", str(out)]) == 0
        trace_path = out / "trace.json"
        assert trace_path.exists()
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]
        assert (out / "trace_metrics.json").exists()
        assert (out / "trace_summary.txt").exists()
        printed = capsys.readouterr().out
        assert "trace records" in printed
        assert "hold:" in printed

    def test_trace_ring_flag(self, tmp_path):
        out = tmp_path / "ring"
        assert cli_main(["trace", "--system", "pg2Q",
                         "--workload", "tablescan",
                         "--processors", "8",
                         "--accesses", "2000", "--ring", "64",
                         "--out", str(out)]) == 0
        document = json.loads((out / "trace.json").read_text())
        non_meta = [e for e in document["traceEvents"]
                    if e["ph"] != "M"]
        assert len(non_meta) == 64
        assert document["otherData"]["dropped_records"] > 0


class TestCounterGuard:
    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc(3)
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)
        # The failed call must not have moved the counter.
        assert counter.value == 3

    def test_zero_increment_allowed(self):
        counter = MetricsRegistry().counter("events")
        counter.inc(0)
        assert counter.value == 0


class TestSnapshotOrdering:
    """The sorted-key guarantee `MetricsRegistry.snapshot` documents."""

    def test_snapshot_keys_sorted_regardless_of_creation_order(self):
        registry = MetricsRegistry()
        for name in ["zeta", "alpha", "mid"]:
            registry.counter(f"c.{name}").inc(1)
            registry.gauge(f"g.{name}").set(1.0)
            registry.histogram(f"h.{name}").record(1.0)
        snapshot = registry.snapshot()
        for family in ("counters", "gauges", "histograms"):
            keys = list(snapshot[family])
            assert keys == sorted(keys)

    def test_snapshot_json_is_byte_stable(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                registry.counter(name).inc(2)
            return json.dumps(registry.snapshot(), sort_keys=True)

        assert build(["b", "a", "c"]) == build(["c", "b", "a"])
