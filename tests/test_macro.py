"""Macro tier: tpcc_lite over the execution layer, end to end.

The macro runner is a determinism gate (same config, same seed →
byte-identical records), a lifecycle exerciser (non-zero write-backs
and pinned-victim skips are acceptance criteria for the execution
layer's pin spans), and a reconciliation harness (every disk write is
either a victim write-back or a background-writer clean — nothing
else may touch the disk's write counter).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.db.exec import TraceExecContext, drain_plan
from repro.errors import ConfigError
from repro.hardware.machines import ALTIX_350
from repro.harness.macro import MacroConfig, run_macro
from repro.workloads.registry import make_workload

#: Small but under real buffer pressure: the tpcc_lite working set at
#: these knobs (~900 pages) is far above 160 frames, so eviction,
#: write-back and pinned-victim skipping all happen within 60 queries.
SMALL = MacroConfig(system="pgBat", target_queries=60, n_threads=6,
                    n_processors=4, buffer_pages=160, seed=11)

#: Native runs really sleep through disk service; shrink it so the
#: smoke test stays test-sized (model shape unchanged).
FAST_DISK_MACHINE = dataclasses.replace(
    ALTIX_350, costs=dataclasses.replace(ALTIX_350.costs,
                                         disk_read_us=60.0))


class TestDeterminism:
    def test_same_seed_same_record(self):
        first = run_macro(SMALL).to_dict()
        second = run_macro(SMALL).to_dict()
        assert first == second
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_seed_changes_record(self):
        first = run_macro(SMALL)
        second = run_macro(SMALL.with_params(seed=12))
        assert first.to_dict() != second.to_dict()

    def test_sharded_run_deterministic(self):
        config = SMALL.with_params(n_shards=2)
        first = run_macro(config).to_dict()
        second = run_macro(config).to_dict()
        assert first == second
        assert first["n_shards"] == 2


class TestLifecycleCounters:
    def test_write_backs_and_pin_skips_nonzero(self):
        result = run_macro(SMALL)
        assert result.queries >= SMALL.target_queries
        assert result.write_backs > 0
        assert result.pinned_victim_skips > 0
        assert 0.0 < result.hit_ratio < 1.0
        assert result.rows > 0
        assert result.op_breakdown  # per-operator dashboard rows exist
        assert result.queries_by_kind  # the mix actually ran

    def test_disk_writes_reconcile_without_bgwriter(self):
        result = run_macro(SMALL)
        assert result.bgwriter_cleaned == 0
        # Every disk write is a victim write-back; every disk read is
        # an install miss (absorbed misses and hits never touch disk).
        assert result.disk_writes == result.write_backs
        assert result.disk_reads == result.misses

    def test_disk_writes_reconcile_with_bgwriter(self):
        result = run_macro(SMALL.with_params(background_writer=True))
        assert result.bgwriter_cleaned > 0
        assert result.disk_writes == \
            result.write_backs + result.bgwriter_cleaned
        assert result.disk_reads == result.misses

    def test_no_disk_run_has_no_writebacks(self):
        result = run_macro(SMALL.with_params(use_disk=False))
        assert result.disk_reads == 0 and result.disk_writes == 0
        assert result.write_backs == 0
        assert result.queries >= SMALL.target_queries


class TestRuntimes:
    def test_native_smoke(self):
        config = SMALL.with_params(runtime="native", target_queries=24,
                                   n_threads=4, machine=FAST_DISK_MACHINE)
        result = run_macro(config)
        assert result.queries >= config.target_queries
        assert result.accesses > 0
        assert result.to_dict()["runtime"] == "native"

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ConfigError):
            run_macro(SMALL.with_params(runtime="gpu"))

    def test_shards_are_sim_only(self):
        with pytest.raises(ConfigError):
            run_macro(SMALL.with_params(runtime="native", n_shards=2))

    def test_plan_less_workload_rejected(self):
        with pytest.raises(ConfigError, match="plan_stream"):
            run_macro(SMALL.with_params(workload="dbt2",
                                        workload_kwargs={"n_warehouses": 2}))


class TestTpccLiteStreams:
    def test_plan_and_transaction_streams_agree(self):
        """Flattening plan_stream reproduces transaction_stream exactly."""
        workload = make_workload("tpcc_lite", seed=7, n_warehouses=2)
        plans = workload.plan_stream(3)
        transactions = workload.transaction_stream(3)
        for _ in range(12):
            query = next(plans)
            transaction = next(transactions)
            ctx = TraceExecContext()
            for root in query.statements:
                drain_plan(root, ctx)
            assert transaction.kind == query.kind
            assert list(transaction.pages) == ctx.pages
            assert transaction.write_indices == frozenset(ctx.write_indices)

    def test_streams_deterministic_per_thread(self):
        workload = make_workload("tpcc_lite", seed=7, n_warehouses=2)
        first = [next(workload.transaction_stream(1)).pages
                 for _ in range(1)]
        again = [next(workload.transaction_stream(1)).pages
                 for _ in range(1)]
        assert first == again
        other_thread = next(workload.transaction_stream(2)).pages
        assert first[0] != other_thread
