"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.costs import CostModel
from repro.hardware.machines import MachineSpec
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def costs() -> CostModel:
    return CostModel()


@pytest.fixture
def tiny_machine() -> MachineSpec:
    """A 4-processor machine with small costs for fast, exact tests."""
    return MachineSpec(
        name="TinyTest",
        max_processors=4,
        processor_steps=(1, 2, 4),
        costs=CostModel(user_work_us=10.0, context_switch_us=1.0,
                        scheduler_quantum_us=100.0),
    )


def make_pool(sim: Simulator, n: int = 2,
              ctx: float = 0.0) -> ProcessorPool:
    return ProcessorPool(sim, n, context_switch_us=ctx)


def make_thread(pool: ProcessorPool, name: str = "t") -> CpuBoundThread:
    return CpuBoundThread(pool, name=name)
