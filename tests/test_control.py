"""Control-plane tests: ControlState, named defaults, the adapter."""

from __future__ import annotations

import pytest

from repro.control import (SERVE_DEFAULTS, TRACE_DEFAULTS, ControlState,
                           ThresholdAdapter, available_controllers,
                           bp_kwargs, make_controller)
from repro.core.config import BPConfig
from repro.errors import ConfigError


class TestControlState:
    def test_invalid_queue_size(self):
        with pytest.raises(ConfigError):
            ControlState(queue_size=0, batch_threshold=1, prefetch=False)

    def test_threshold_must_fit_queue(self):
        with pytest.raises(ConfigError):
            ControlState(queue_size=8, batch_threshold=9, prefetch=False)
        with pytest.raises(ConfigError):
            ControlState(queue_size=8, batch_threshold=0, prefetch=False)

    def test_set_batch_threshold_bounds(self):
        control = ControlState(queue_size=16, batch_threshold=8,
                               prefetch=False)
        control.set_batch_threshold(16)
        assert control.batch_threshold == 16
        control.set_batch_threshold(1)
        assert control.batch_threshold == 1
        with pytest.raises(ConfigError):
            control.set_batch_threshold(17)
        with pytest.raises(ConfigError):
            control.set_batch_threshold(0)
        # A rejected write leaves the last good value in place.
        assert control.batch_threshold == 1

    def test_from_config_mirrors_bpconfig(self):
        config = BPConfig.full().with_params(queue_size=32,
                                             batch_threshold=4)
        control = ControlState.from_config(config, policy_name="2q")
        assert control.queue_size == 32
        assert control.batch_threshold == 4
        assert control.prefetch is True
        assert control.policy_name == "2q"
        assert control.controller is None

    def test_to_dict_is_json_shape(self):
        control = ControlState(queue_size=16, batch_threshold=8,
                               prefetch=True, policy_name="lru")
        assert control.to_dict() == {
            "queue_size": 16,
            "batch_threshold": 8,
            "prefetch": True,
            "policy_name": "lru",
        }


class TestNamedDefaults:
    def test_trace_defaults_are_paper_defaults(self):
        assert TRACE_DEFAULTS.queue_size == 64
        assert TRACE_DEFAULTS.batch_threshold == 32
        config = BPConfig()
        assert config.queue_size == TRACE_DEFAULTS.queue_size
        assert config.batch_threshold == TRACE_DEFAULTS.batch_threshold

    def test_serve_defaults_quarter_scale_same_ratio(self):
        assert SERVE_DEFAULTS.queue_size == 16
        assert SERVE_DEFAULTS.batch_threshold == 8
        trace_ratio = TRACE_DEFAULTS.batch_threshold / TRACE_DEFAULTS.queue_size
        serve_ratio = SERVE_DEFAULTS.batch_threshold / SERVE_DEFAULTS.queue_size
        assert trace_ratio == serve_ratio == 0.5

    def test_tiers_consume_the_named_defaults(self):
        from repro.harness.experiment import ExperimentConfig
        from repro.harness.macro import MacroConfig
        from repro.serve.config import ServeConfig
        experiment = ExperimentConfig(system="pgBat", workload="dbt1")
        assert experiment.queue_size == TRACE_DEFAULTS.queue_size
        assert experiment.batch_threshold == TRACE_DEFAULTS.batch_threshold
        macro = MacroConfig()
        assert macro.queue_size == SERVE_DEFAULTS.queue_size
        assert macro.batch_threshold == SERVE_DEFAULTS.batch_threshold
        serve = ServeConfig()
        assert serve.queue_size == SERVE_DEFAULTS.queue_size
        assert serve.batch_threshold == SERVE_DEFAULTS.batch_threshold


class TestBpKwargs:
    def test_shared_plumbing_triple(self):
        from repro.harness.experiment import ExperimentConfig
        config = ExperimentConfig(system="pgBat", workload="dbt1",
                                  policy_name="clock", queue_size=32,
                                  batch_threshold=4)
        assert bp_kwargs(config) == {
            "queue_size": 32,
            "batch_threshold": 4,
            "policy_name": "clock",
        }

    def test_include_policy_false_for_fixed_policy_builders(self):
        from repro.serve.config import ServeConfig
        config = ServeConfig(queue_size=8, batch_threshold=2)
        assert bp_kwargs(config, include_policy=False) == {
            "queue_size": 8,
            "batch_threshold": 2,
        }


# -- ThresholdAdapter unit tests against a fake pool ------------------------

class FakeStats:
    def __init__(self):
        self.requests = 0
        self.contentions = 0


class FakeLock:
    def __init__(self):
        self.stats = FakeStats()
        self.name = "fake_pool_lock"


class FakeHandler:
    def __init__(self, queue_size=64, batch_threshold=8):
        self.lock = FakeLock()
        self.control = ControlState(queue_size=queue_size,
                                    batch_threshold=batch_threshold,
                                    prefetch=False)


class FakeRuntime:
    def __init__(self, observer=None):
        self.observer = observer
        self.now = 0.0


class FakeThread:
    def __init__(self, observer=None):
        self.runtime = FakeRuntime(observer)


class FakeSlot:
    def __init__(self, observer=None):
        self.thread = FakeThread(observer)


def close_window(adapter, handler, slot, requests, contentions):
    """Advance the fake lock counters and push one full window."""
    handler.lock.stats.requests += requests
    handler.lock.stats.contentions += contentions
    for _ in range(adapter.window_commits):
        adapter.on_commit(handler, slot)


class TestThresholdAdapter:
    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            ThresholdAdapter(window_commits=0)
        with pytest.raises(ConfigError):
            ThresholdAdapter(low_water=0.1, high_water=0.05)
        with pytest.raises(ConfigError):
            ThresholdAdapter(low_water=-0.1)
        with pytest.raises(ConfigError):
            ThresholdAdapter(min_threshold=0)

    def test_first_window_only_arms_the_delta(self):
        adapter = ThresholdAdapter(window_commits=4)
        handler, slot = FakeHandler(batch_threshold=8), FakeSlot()
        close_window(adapter, handler, slot, requests=10, contentions=10)
        assert adapter.decisions == 0
        assert handler.control.batch_threshold == 8

    def test_high_contention_doubles_threshold(self):
        adapter = ThresholdAdapter(window_commits=1, cooldown_windows=0)
        handler, slot = FakeHandler(batch_threshold=8), FakeSlot()
        close_window(adapter, handler, slot, 10, 0)   # arm
        close_window(adapter, handler, slot, 100, 50)  # rate 0.5
        assert handler.control.batch_threshold == 16
        assert adapter.decisions == 1
        assert adapter.last_rate == pytest.approx(0.5)

    def test_doubling_caps_at_half_queue(self):
        adapter = ThresholdAdapter(window_commits=1, cooldown_windows=0)
        handler = FakeHandler(queue_size=64, batch_threshold=8)
        slot = FakeSlot()
        close_window(adapter, handler, slot, 10, 0)
        for _ in range(6):  # plenty of hot windows
            close_window(adapter, handler, slot, 100, 50)
        # 8 -> 16 -> 32, then pinned: threshold == queue leaves the
        # Fig. 4 TryLock no headroom, so the walk stops at queue // 2.
        assert handler.control.batch_threshold == 32
        assert adapter.decisions == 2

    def test_quiet_lock_halves_to_floor(self):
        adapter = ThresholdAdapter(window_commits=1, cooldown_windows=0,
                                   min_threshold=2)
        handler = FakeHandler(queue_size=64, batch_threshold=16)
        slot = FakeSlot()
        close_window(adapter, handler, slot, 10, 0)
        for _ in range(8):
            close_window(adapter, handler, slot, 100, 0)  # rate 0.0
        assert handler.control.batch_threshold == 2
        assert handler.control.batch_threshold >= adapter.min_threshold

    def test_mid_band_rate_holds_steady(self):
        adapter = ThresholdAdapter(window_commits=1, cooldown_windows=0,
                                   high_water=0.5, low_water=0.01)
        handler, slot = FakeHandler(batch_threshold=8), FakeSlot()
        close_window(adapter, handler, slot, 10, 0)
        close_window(adapter, handler, slot, 100, 10)  # rate 0.1
        assert handler.control.batch_threshold == 8
        assert adapter.decisions == 0

    def test_cooldown_damps_consecutive_moves(self):
        adapter = ThresholdAdapter(window_commits=1, cooldown_windows=2)
        handler = FakeHandler(queue_size=128, batch_threshold=4)
        slot = FakeSlot()
        close_window(adapter, handler, slot, 10, 0)
        close_window(adapter, handler, slot, 100, 50)  # move: 4 -> 8
        assert handler.control.batch_threshold == 8
        close_window(adapter, handler, slot, 100, 50)  # cooling
        close_window(adapter, handler, slot, 100, 50)  # cooling
        assert handler.control.batch_threshold == 8
        assert adapter.cooldown_skips == 2
        close_window(adapter, handler, slot, 100, 50)  # move: 8 -> 16
        assert handler.control.batch_threshold == 16
        assert adapter.decisions == 2

    def test_decisions_reach_the_observer(self):
        class Recorder:
            def __init__(self):
                self.calls = []

            def on_control_decision(self, pool, knob, old, new, now,
                                    reason):
                self.calls.append((pool, knob, old, new, reason))

        observer = Recorder()
        adapter = ThresholdAdapter(window_commits=1, cooldown_windows=0)
        handler, slot = FakeHandler(batch_threshold=8), FakeSlot(observer)
        close_window(adapter, handler, slot, 10, 0)
        close_window(adapter, handler, slot, 100, 50)
        assert observer.calls == [
            ("fake_pool_lock", "batch_threshold", 8, 16,
             "contention_rate=0.500000")]

    def test_identical_inputs_identical_summaries(self):
        summaries = []
        for _ in range(2):
            adapter = ThresholdAdapter(window_commits=2)
            handler, slot = FakeHandler(batch_threshold=4), FakeSlot()
            for requests, contentions in [(10, 0), (50, 20), (50, 20),
                                          (50, 0), (50, 0)]:
                close_window(adapter, handler, slot, requests, contentions)
            summaries.append((adapter.to_dict(),
                              handler.control.batch_threshold))
        assert summaries[0] == summaries[1]

    def test_to_dict_shape(self):
        adapter = ThresholdAdapter()
        summary = adapter.to_dict()
        assert summary["controller"] == "threshold"
        assert set(summary) == {"controller", "window_commits",
                                "high_water", "low_water", "commits",
                                "decisions", "cooldown_skips", "last_rate"}


class TestControllerRegistry:
    def test_available_controllers_sorted(self):
        names = available_controllers()
        assert "threshold" in names
        assert names == sorted(names)

    def test_make_controller(self):
        adapter = make_controller("threshold", window_commits=8)
        assert isinstance(adapter, ThresholdAdapter)
        assert adapter.window_commits == 8

    def test_unknown_controller_rejected(self):
        with pytest.raises(ConfigError):
            make_controller("pid")


class TestExperimentIntegration:
    def test_controlled_run_reports_summary(self, tiny_machine):
        from repro.harness.experiment import ExperimentConfig, run_experiment
        config = ExperimentConfig(
            system="pgBat", workload="tablescan", machine=tiny_machine,
            n_processors=4, target_accesses=2_000, buffer_pages=128,
            queue_size=16, batch_threshold=1, controller="threshold",
            seed=11)
        result = run_experiment(config)
        assert result.controller is not None
        assert result.controller["controller"] == "threshold"
        assert 1 <= result.controller["batch_threshold"] <= 16
        assert result.controller["commits"] > 0
        record = result.to_dict()
        assert record["controller"] == result.controller

    def test_uncontrolled_record_is_unchanged(self, tiny_machine):
        from repro.harness.experiment import ExperimentConfig, run_experiment
        config = ExperimentConfig(
            system="pgBat", workload="tablescan", machine=tiny_machine,
            n_processors=2, target_accesses=500, buffer_pages=128,
            seed=11)
        result = run_experiment(config)
        assert result.controller is None
        assert "controller" not in result.to_dict()

    def test_mp_backend_rejects_controllers(self, tiny_machine):
        from repro.harness.experiment import ExperimentConfig, run_experiment
        config = ExperimentConfig(
            system="pgBat", workload="tablescan", machine=tiny_machine,
            n_processors=2, target_accesses=100, runtime="mp",
            controller="threshold")
        with pytest.raises(ConfigError):
            run_experiment(config)
