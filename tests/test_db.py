"""Tests for the database substrate: storage, relations, transactions."""

from __future__ import annotations

import pytest

from repro.db.relations import Relation, Schema
from repro.db.storage import DiskArray
from repro.db.transactions import (Transaction, TransactionLog,
                                   TransactionOutcome)
from repro.bufmgr.tags import PageId
from repro.errors import SimulationError, WorkloadError
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator


class TestRelation:
    def test_page_bounds(self):
        relation = Relation("t", 4)
        assert relation.page(0) == PageId("t", 0)
        assert relation.page(3) == PageId("t", 3)
        with pytest.raises(WorkloadError):
            relation.page(4)
        with pytest.raises(WorkloadError):
            relation.page(-1)

    def test_pages_iterates_in_order(self):
        relation = Relation("t", 3)
        assert list(relation.pages()) == [PageId("t", block)
                                          for block in range(3)]

    def test_zero_pages_rejected(self):
        with pytest.raises(WorkloadError):
            Relation("t", 0)


class TestSchema:
    def test_lookup_and_totals(self):
        schema = Schema([Relation("a", 2), Relation("b", 3)])
        assert schema["a"].n_pages == 2
        assert schema.total_pages == 5
        assert len(list(schema.all_pages())) == 5
        assert "a" in schema and "zzz" not in schema

    def test_duplicate_rejected(self):
        with pytest.raises(WorkloadError):
            Schema([Relation("a", 1), Relation("a", 2)])

    def test_unknown_lookup_raises(self):
        schema = Schema([Relation("a", 1)])
        with pytest.raises(WorkloadError):
            schema["missing"]


class TestDiskArray:
    def test_validation(self, sim):
        with pytest.raises(SimulationError):
            DiskArray(sim, 100.0, 0)
        with pytest.raises(SimulationError):
            DiskArray(sim, 0.0, 1)
        with pytest.raises(SimulationError):
            DiskArray(sim, 100.0, 1, jitter_fraction=1.5)

    def run_reads(self, sim, disk, n_reads, n_cpus=4):
        pool = ProcessorPool(sim, n_cpus, 0.0)
        done = []

        def body(thread):
            yield from disk.read(thread)
            done.append(sim.now)

        for index in range(n_reads):
            thread = CpuBoundThread(pool, f"r{index}")
            thread.start(body(thread))
        sim.run()
        return done

    def test_parallel_reads_up_to_concurrency(self, sim):
        disk = DiskArray(sim, 100.0, concurrency=2)
        done = self.run_reads(sim, disk, 2)
        assert done == [100.0, 100.0]

    def test_queueing_beyond_concurrency(self, sim):
        disk = DiskArray(sim, 100.0, concurrency=2)
        done = self.run_reads(sim, disk, 4)
        assert sorted(done) == [100.0, 100.0, 200.0, 200.0]
        assert disk.reads == 4
        assert disk.total_queue_wait_us == pytest.approx(200.0)

    def test_mean_latency(self, sim):
        disk = DiskArray(sim, 50.0, concurrency=1)
        self.run_reads(sim, disk, 2)
        # Second read waits 50 then services 50 -> mean (50+100)/2.
        assert disk.mean_latency_us() == pytest.approx(75.0)

    def test_jitter_is_deterministic(self):
        def total_time(seed):
            sim = Simulator()
            disk = DiskArray(sim, 100.0, 1, jitter_fraction=0.2,
                             seed=seed)
            self.run_reads(sim, disk, 3)
            return sim.now

        assert total_time(1) == total_time(1)
        assert total_time(1) != total_time(2)


class TestTransactionLog:
    def test_throughput_and_response(self):
        log = TransactionLog()
        log.record(TransactionOutcome("a", 0.0, 1000.0, 10, 9))
        log.record(TransactionOutcome("a", 500.0, 2500.0, 10, 10))
        assert log.count == 2
        # 2 transactions in 2.5 ms of simulated time.
        assert log.throughput_tps(2500.0) == pytest.approx(800.0)
        assert log.mean_response_time_us() == pytest.approx(1500.0)

    def test_empty_log_guards(self):
        log = TransactionLog()
        assert log.throughput_tps(1000.0) == 0.0
        assert log.mean_response_time_us() == 0.0

    def test_transaction_len_and_work_factor(self):
        transaction = Transaction("scan", [PageId("t", 0)] * 7,
                                  work_factor=0.4)
        assert len(transaction) == 7
        assert transaction.work_factor == 0.4


class TestResponsePercentiles:
    def make_log(self):
        log = TransactionLog()
        for index in range(100):
            log.record(TransactionOutcome("t", 0.0, float(index + 1),
                                          1, 1))
        return log

    def test_percentiles(self):
        log = self.make_log()
        assert log.percentile_response_time_us(50.0) == pytest.approx(50.0)
        assert log.percentile_response_time_us(95.0) == pytest.approx(95.0)
        assert log.percentile_response_time_us(100.0) == pytest.approx(100.0)

    def test_percentile_bounds(self):
        log = self.make_log()
        with pytest.raises(ValueError):
            log.percentile_response_time_us(0.0)
        with pytest.raises(ValueError):
            log.percentile_response_time_us(101.0)

    def test_empty_log(self):
        assert TransactionLog().percentile_response_time_us(95.0) == 0.0

    def test_single_outcome_every_percentile(self):
        log = TransactionLog()
        log.record(TransactionOutcome("t", 0.0, 42.0, 1, 1))
        for percentile in (0.1, 1.0, 50.0, 99.9, 100.0):
            assert log.percentile_response_time_us(percentile) == 42.0

    def test_p100_is_max_regardless_of_insertion_order(self):
        log = TransactionLog()
        for finished in (5.0, 1.0, 9.0, 3.0):
            log.record(TransactionOutcome("t", 0.0, finished, 1, 1))
        assert log.percentile_response_time_us(100.0) == 9.0

    def test_ties_resolve_by_nearest_rank(self):
        log = TransactionLog()
        for finished in (10.0, 10.0, 10.0, 20.0):
            log.record(TransactionOutcome("t", 0.0, finished, 1, 1))
        assert log.percentile_response_time_us(50.0) == 10.0
        assert log.percentile_response_time_us(75.0) == 10.0
        assert log.percentile_response_time_us(90.0) == 20.0

    def test_mix(self):
        log = TransactionLog()
        log.record(TransactionOutcome("a", 0, 1, 1, 1))
        log.record(TransactionOutcome("a", 0, 1, 1, 1))
        log.record(TransactionOutcome("b", 0, 1, 1, 1))
        assert log.mix() == {"a": 2, "b": 1}
