"""Tests for the lossy-batching variant (Caffeine-style descendant)."""

from __future__ import annotations

import pytest

from repro.analysis.hitratio import replay, replay_lossy
from repro.bufmgr.manager import BufferManager
from repro.bufmgr.tags import PageId
from repro.core.bpwrapper import ThreadSlot
from repro.core.config import BPConfig
from repro.core.lossy import LossyBatchedHandler
from repro.errors import ConfigError
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.systems import build_system, system_spec
from repro.hardware.costs import CostModel
from repro.hardware.cpucache import MetadataCacheModel
from repro.policies.lru import LRUPolicy
from repro.simcore.cpu import CpuBoundThread, ProcessorPool
from repro.simcore.engine import Simulator
from repro.sync.locks import SimLock
from repro.workloads.base import merged_trace
from repro.workloads.registry import make_workload


def lossy_rig(sim, capacity=8, queue_size=4, batch_threshold=2):
    costs = CostModel(user_work_us=1.0)
    policy = LRUPolicy(capacity)
    lock = SimLock(sim, grant_cost_us=0.1, try_cost_us=0.1)
    cache = MetadataCacheModel(costs)
    config = BPConfig(batching=True, prefetching=False,
                      queue_size=queue_size,
                      batch_threshold=batch_threshold)
    handler = LossyBatchedHandler(policy, lock, cache, costs, config)
    manager = BufferManager(sim, capacity, policy, handler, costs)
    return manager, policy, lock, handler


class TestLossyHandler:
    def test_never_blocks_on_hits(self, sim):
        # Hold the lock forever from another thread; the lossy worker
        # must finish all its hits anyway, dropping overflow.
        manager, policy, lock, handler = lossy_rig(sim, queue_size=4,
                                                   batch_threshold=2)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 2, 0.0)
        holder = CpuBoundThread(pool, "holder")
        worker = CpuBoundThread(pool, "worker")
        slot = ThreadSlot(worker, 0, queue_size=4)
        finished = []

        def holder_body():
            yield from lock.acquire(holder)
            yield from holder.run_for(10_000.0)
            lock.release(holder)

        def worker_body():
            yield from worker.run_for(1.0)
            for _ in range(5):
                for page in pages:
                    yield from manager.access(slot, page)
            finished.append(True)

        holder.start(holder_body())
        worker.start(worker_body())
        sim.run()
        assert finished
        assert lock.stats.contentions == 0  # never blocked
        # Queue filled (4 kept) and the remaining 36 hits were dropped.
        assert handler.dropped_accesses == 36

    def test_commits_when_lock_free(self, sim):
        manager, policy, lock, handler = lossy_rig(sim, queue_size=4,
                                                   batch_threshold=2)
        pages = [PageId("t", block) for block in range(8)]
        manager.warm_with(pages)
        pool = ProcessorPool(sim, 1, 0.0)
        thread = CpuBoundThread(pool)
        slot = ThreadSlot(thread, 0, queue_size=4)

        def body():
            for page in pages[:4]:
                yield from manager.access(slot, page)

        thread.start(body())
        sim.run()
        assert handler.dropped_accesses == 0
        assert slot.queue.total_committed == 4
        assert list(policy.lru_order())[-4:] == pages[:4]

    def test_system_registration(self, tiny_machine):
        spec = system_spec("pgBatLossy")
        assert "Lossy" in spec.enhancement
        sim = Simulator()
        build = build_system("pgBatLossy", sim, 64, tiny_machine)
        assert isinstance(build.handler, LossyBatchedHandler)

    def test_zero_contention_at_scale(self):
        config = ExperimentConfig(
            system="pgBatLossy", workload="dbt1",
            workload_kwargs={"scale": 0.15}, n_processors=16,
            target_accesses=20_000, seed=11)
        result = run_experiment(config)
        assert result.lock_stats.contentions == 0
        assert result.throughput_tps > 0


class TestReplayLossy:
    def test_drop_rate_zero_equals_exact(self):
        workload = make_workload("dbt1", seed=3, scale=0.2)
        trace = merged_trace(workload, 20_000)
        capacity = workload.total_pages // 10
        exact = replay("2q", trace, capacity=capacity)
        lossless = replay_lossy("2q", trace, capacity=capacity,
                                drop_rate=0.0)
        assert lossless.hits == exact.hits

    def test_moderate_loss_barely_moves_hit_ratio(self):
        # The Caffeine bet: losing hit history is almost free.
        workload = make_workload("dbt1", seed=3, scale=0.2)
        trace = merged_trace(workload, 30_000)
        capacity = workload.total_pages // 10
        exact = replay("2q", trace, capacity=capacity).hit_ratio
        lossy = replay_lossy("2q", trace, capacity=capacity,
                             drop_rate=0.25, seed=5).hit_ratio
        assert lossy == pytest.approx(exact, abs=0.015)

    def test_total_loss_degrades(self):
        # Dropping ALL hit history turns LRU into FIFO-ish behaviour:
        # measurably worse on a skewed trace.
        workload = make_workload("dbt1", seed=3, scale=0.2)
        trace = merged_trace(workload, 30_000)
        capacity = workload.total_pages // 20
        exact = replay("lru", trace, capacity=capacity).hit_ratio
        blind = replay_lossy("lru", trace, capacity=capacity,
                             drop_rate=1.0).hit_ratio
        assert blind < exact

    def test_validation(self):
        with pytest.raises(ConfigError):
            replay_lossy("lru", [], capacity=4, drop_rate=1.5)
