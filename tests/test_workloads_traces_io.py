"""Tests for trace file persistence."""

from __future__ import annotations

import pytest

from repro.bufmgr.tags import PageId
from repro.errors import WorkloadError
from repro.workloads import TraceWorkload, load_trace, save_trace
from repro.workloads.traces import SyntheticTrace


class TestTraceRoundTrip:
    def test_save_and_load(self, tmp_path):
        trace = SyntheticTrace(seed=1).zipf("hot", 50, 200).accesses
        path = tmp_path / "trace.txt"
        assert save_trace(path, trace) == 200
        assert load_trace(path) == trace

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nitems 3\n# more\nitems 4\n")
        assert load_trace(path) == [PageId("items", 3), PageId("items", 4)]

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("items 3\nbogus line here\n")
        with pytest.raises(WorkloadError, match=":2:"):
            load_trace(path)

    def test_non_integer_block_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("items x\n")
        with pytest.raises(WorkloadError, match="integer"):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# nothing but comments\n")
        with pytest.raises(WorkloadError, match="no accesses"):
            load_trace(path)

    def test_workload_from_file(self, tmp_path):
        original = SyntheticTrace(seed=2).loop("loop", 5, 20).accesses
        path = tmp_path / "trace.txt"
        save_trace(path, original)
        workload = TraceWorkload.from_file(path,
                                           accesses_per_transaction=7)
        stream = workload.transaction_stream(0)
        replayed = []
        while len(replayed) < len(original):
            replayed.extend(next(stream).pages)
        assert replayed[:len(original)] == original

    def test_loaded_trace_drives_hit_ratio_replay(self, tmp_path):
        from repro.analysis.hitratio import replay
        trace = SyntheticTrace(seed=3).zipf("t", 100, 1000).accesses
        path = tmp_path / "trace.txt"
        save_trace(path, trace)
        direct = replay("lru", trace, capacity=20)
        loaded = replay("lru", load_trace(path), capacity=20)
        assert direct.hits == loaded.hits
