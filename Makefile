# Developer conveniences. Everything also works as plain commands —
# see README.md.

.PHONY: install test bench repro quick charts csv clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper artifact as plain tables (fast to read, slow
# to run: ~3-5 minutes at full scale).
repro:
	python -m repro.harness.cli all

# Quarter-scale everything for quick iterations.
quick:
	REPRO_BENCH_SCALE=0.25 pytest benchmarks/ --benchmark-only

charts:
	python -m repro.harness.cli fig2 fig6 fig8 --charts

csv:
	python -m repro.harness.cli all --csv out/

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks out
	find . -name __pycache__ -type d -exec rm -rf {} +
