# Developer conveniences. Everything also works as plain commands —
# see README.md.

.PHONY: install test lint check native-smoke bench-scaling trace \
	analyze dashboard serve serve-smoke telemetry macro tune \
	tune-smoke perf-diff bench bench-quick repro quick charts csv \
	clean

install:
	pip install -e .

test:
	pytest tests/

# Ruff, configured in pyproject.toml ([tool.ruff]); the CI lint job
# runs exactly this.
lint:
	ruff check src tests benchmarks examples

# Correctness gate: checked multi-threaded runs (lock-protocol monitor
# + policy invariants), the differential oracle (batched vs direct must
# produce identical hit/miss/eviction streams) and a deterministic
# schedule fuzzer over queue-geometry corners. Non-zero exit on any
# violation. See docs/correctness.md.
check:
	PYTHONPATH=src python -m repro.harness.cli check --fuzz 25

# Native-runtime smoke: a multi-threaded wall-clock run on real OS
# threads under a hard timeout (deadlock guard), plus the layering
# guard (algorithm layers must import with the simulator blocked) and
# the sim-vs-native single-thread equivalence tests. CI runs exactly
# this as the native-smoke job.
native-smoke:
	timeout 120 env PYTHONPATH=src python -m repro.harness.cli run \
		--runtime native --system pgBat --workload tablescan \
		--processors 4 --accesses 20000
	PYTHONPATH=src python -m pytest -q \
		tests/test_layering.py tests/test_runtime_equivalence.py

# Wall-clock scaling sweep (Fig. 6/7 shapes) on the truly parallel
# backend for this build: mp worker processes over shared memory, or
# native threads on free-threaded CPython. Writes
# out/BENCH_scaling.json + out/scaling.html. On a multi-core host,
# fails if batching loses to lock-per-hit at the top worker count.
# CI runs a 2-worker version as the scaling-smoke job.
bench-scaling:
	timeout 600 env PYTHONPATH=src python benchmarks/bench_scaling.py \
		--workers 1,2,4 --systems pg2Q pgBat pgBatPre \
		--out out --assert-divergence

# One observed run: writes out/trace.json (open in Perfetto or
# chrome://tracing), out/trace_metrics.json and a flame summary of the
# top lock-holding span kinds. See docs/observability.md.
trace:
	PYTHONPATH=src python -m repro.harness.cli trace --out out

# Observed 2x2 sweep -> contention analysis + self-contained HTML
# dashboard (out/dashboard.html, out/analysis.json). Deterministic for
# a given seed. `dashboard` is an alias.
analyze:
	PYTHONPATH=src python -m repro.harness.cli analyze --out out

dashboard: analyze

# Sharded multi-tenant serving sweep: 4 buffer-pool shards x 8 tenants
# under skewed load with token-bucket admission. Writes out/serve.json
# (byte-identical across same-seed sim runs) and a per-shard contention
# heatmap (out/serve_dashboard.html). See docs/architecture.md §11.
serve:
	PYTHONPATH=src python -m repro.harness.cli serve --out out

# The CI serve-smoke grid: tiny sweep run twice, records compared
# byte-for-byte (cmp), proving the serving layer is deterministic.
serve-smoke:
	PYTHONPATH=src python -m repro.harness.cli serve \
		--shards 2 --tenants 3 --skews 0.2 0.8 \
		--requests 600 --quota 4000 --out out/serve-a
	PYTHONPATH=src python -m repro.harness.cli serve \
		--shards 2 --tenants 3 --skews 0.2 0.8 \
		--requests 600 --quota 4000 --out out/serve-b
	cmp out/serve-a/serve.json out/serve-b/serve.json
	cmp out/serve-a/serve_dashboard.html out/serve-b/serve_dashboard.html

# The telemetry pipeline end to end: serve grid with request-scoped
# tracing and windowed sampling on, exporting the merged registry as
# OpenMetrics text (out/telemetry.prom), the sampled series
# (out/timeseries.json), the first cell's request-linked trace
# (out/trace.json) and the ops dashboard
# (out/telemetry_dashboard.html). All byte-deterministic per seed; CI
# runs a twice-and-cmp version as the telemetry-smoke job. See
# docs/observability.md ("Telemetry pipeline").
telemetry:
	PYTHONPATH=src python -m repro.harness.cli serve \
		--shards 2 --tenants 3 --skews 0.2 0.8 \
		--requests 600 --quota 4000 --trace \
		--telemetry out/telemetry.prom --out out

# Query-execution macro tier: tpcc_lite plans (heap scans, B-tree
# walks, joins, inserts/updates) executed live against the buffer
# pool, operators holding page pins across their lifetimes. Sweeps
# pg2Q vs pgBat, pooled and 2-shard; writes out/macro.json
# (byte-identical across same-seed sim runs) and a per-operator
# dashboard (out/macro_dashboard.html). CI runs a twice-and-cmp
# version as the macro-smoke job. See docs/architecture.md §12.
macro:
	PYTHONPATH=src python -m repro.harness.cli macro \
		--systems pg2Q pgBat --shards 0 2 --out out

# Control-plane tuning sweep: the Fig. 8 (threshold x queue x
# prefetch) study as a tool, plus the online threshold adapter's
# convergence probe and the adaptive policy's hit-ratio face-off.
# Writes out/tune.json (byte-identical across same-seed sim runs) and
# a heatmap dashboard (out/tune_dashboard.html). CI runs the
# twice-and-cmp version below as the tune-smoke job. See
# docs/architecture.md §13.
tune:
	PYTHONPATH=src python -m repro.harness.cli tune --out out

# The CI tune-smoke grid: tiny sweep run twice, records compared
# byte-for-byte (cmp), proving the control plane is deterministic.
tune-smoke:
	PYTHONPATH=src python -m repro.harness.cli tune \
		--thresholds 1 8 32 --queues 64 --prefetch off \
		--accesses 1500 --processors 8 --out out/tune-a
	PYTHONPATH=src python -m repro.harness.cli tune \
		--thresholds 1 8 32 --queues 64 --prefetch off \
		--accesses 1500 --processors 8 --out out/tune-b
	cmp out/tune-a/tune.json out/tune-b/tune.json
	cmp out/tune-a/tune_dashboard.html out/tune-b/tune_dashboard.html

# Gate this checkout against BENCH_baseline.json (committed, sim-only
# metrics). Non-zero exit on a >tolerance regression. Refresh with:
#   PYTHONPATH=src python -m repro.harness.cli perf-diff \
#       --mode update --skip-wall
perf-diff:
	PYTHONPATH=src python -m repro.harness.cli perf-diff --skip-wall

bench:
	pytest benchmarks/ --benchmark-only

# Tenth-scale Fig. 6 grid, serial vs process pool (+ engine events/sec
# microbenchmark); verifies bit-identical output and writes
# BENCH_parallel.json with the speedup numbers.
bench-quick:
	REPRO_BENCH_SCALE=0.1 PYTHONPATH=src \
		python benchmarks/bench_parallel.py --workers auto

# Regenerate every paper artifact as plain tables (fast to read, slow
# to run: ~3-5 minutes at full scale).
repro:
	python -m repro.harness.cli all

# Quarter-scale everything for quick iterations.
quick:
	REPRO_BENCH_SCALE=0.25 pytest benchmarks/ --benchmark-only

charts:
	python -m repro.harness.cli fig2 fig6 fig8 --charts

csv:
	python -m repro.harness.cli all --csv out/

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks out
	find . -name __pycache__ -type d -exec rm -rf {} +
