"""Setuptools shim.

This environment has no network access and no ``wheel`` package, so the
PEP 517 editable-install path (which needs ``bdist_wheel``) is
unavailable; this shim lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` route (see pip.conf: ``use-pep517 = false``).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
